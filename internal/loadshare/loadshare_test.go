package loadshare

import (
	"testing"
	"time"

	"siteselect/internal/lockmgr"
	"siteselect/internal/netsim"
	"siteselect/internal/proto"
)

func TestH1Feasible(t *testing.T) {
	now := 100 * time.Second
	if !H1Feasible(now, 2, 10*time.Second, 120*time.Second) {
		t.Fatal("boundary case should be feasible")
	}
	if H1Feasible(now, 3, 10*time.Second, 120*time.Second) {
		t.Fatal("over-full queue should be infeasible")
	}
}

func conflict(obj int, holders ...netsim.SiteID) proto.ObjConflict {
	return proto.ObjConflict{Obj: lockmgr.ObjectID(obj), Holders: holders}
}

func TestConflictsAt(t *testing.T) {
	conflicts := []proto.ObjConflict{
		conflict(1, 2),    // solely held by site 2
		conflict(2, 2, 3), // held by 2 and 3
		conflict(3, 4),    // solely held by site 4
	}
	if n := ConflictsAt(1, conflicts); n != 3 {
		t.Fatalf("origin conflicts = %d, want 3", n)
	}
	if n := ConflictsAt(2, conflicts); n != 2 {
		t.Fatalf("site2 conflicts = %d, want 2 (obj1 resolved)", n)
	}
	if n := ConflictsAt(4, conflicts); n != 2 {
		t.Fatalf("site4 conflicts = %d, want 2 (obj3 resolved)", n)
	}
}

func TestChooseSitePrefersFewestConflicts(t *testing.T) {
	d := ChooseSite(Params{
		Origin:   1,
		Now:      0,
		Deadline: time.Hour,
		Conflicts: []proto.ObjConflict{
			conflict(1, 2), conflict(2, 2), conflict(3, 3),
		},
		Loads:     map[netsim.SiteID]proto.LoadReport{},
		OriginATL: 10 * time.Second,
	})
	if !d.Ship || d.Target != 2 {
		t.Fatalf("decision = %+v, want ship to 2", d)
	}
	if d.Conflicts != 1 {
		t.Fatalf("conflicts at target = %d, want 1", d.Conflicts)
	}
}

func TestChooseSiteRequireImprovementKeepsOrigin(t *testing.T) {
	// Every conflicted object is multi-held: no site improves on the
	// origin's conflict count, so with RequireImprovement the origin
	// wins.
	d := ChooseSite(Params{
		Origin:             1,
		Deadline:           time.Hour,
		Conflicts:          []proto.ObjConflict{conflict(1, 2, 3), conflict(2, 3, 4)},
		Loads:              map[netsim.SiteID]proto.LoadReport{},
		OriginATL:          10 * time.Second,
		RequireImprovement: true,
	})
	if d.Ship {
		t.Fatalf("decision = %+v, want stay at origin", d)
	}
}

func TestChooseSiteTieBreaksByLoad(t *testing.T) {
	loads := map[netsim.SiteID]proto.LoadReport{
		2: {Client: 2, QueueLen: 5, ATL: 10 * time.Second, Valid: true},
		3: {Client: 3, QueueLen: 1, ATL: 10 * time.Second, Valid: true},
	}
	d := ChooseSite(Params{
		Origin:   1,
		Deadline: 10 * time.Hour,
		Conflicts: []proto.ObjConflict{
			conflict(1, 2), conflict(2, 3), // both sites resolve one conflict each
		},
		Loads:          loads,
		OriginQueueLen: 9,
		OriginATL:      10 * time.Second,
	})
	if d.Target != 3 {
		t.Fatalf("target = %v, want 3 (lighter load)", d.Target)
	}
}

func TestChooseSiteSkipsInfeasibleCandidates(t *testing.T) {
	loads := map[netsim.SiteID]proto.LoadReport{
		2: {Client: 2, QueueLen: 100, ATL: 10 * time.Second, Valid: true},
	}
	d := ChooseSite(Params{
		Origin:    1,
		Now:       0,
		Deadline:  30 * time.Second, // site 2 would need 1010s
		Conflicts: []proto.ObjConflict{conflict(1, 2)},
		Loads:     loads,
		OriginATL: 10 * time.Second,
	})
	if d.Ship {
		t.Fatalf("decision = %+v, want origin (candidate infeasible)", d)
	}
}

func TestChooseSiteNoConflictsStaysHome(t *testing.T) {
	d := ChooseSite(Params{
		Origin:    7,
		Deadline:  time.Hour,
		Loads:     map[netsim.SiteID]proto.LoadReport{},
		OriginATL: time.Second,
	})
	if d.Ship || d.Target != 7 {
		t.Fatalf("decision = %+v", d)
	}
}

func TestChooseSiteDeterministicTieBreak(t *testing.T) {
	for i := 0; i < 5; i++ {
		d := ChooseSite(Params{
			Origin:    1,
			Deadline:  time.Hour,
			Conflicts: []proto.ObjConflict{conflict(1, 3), conflict(2, 2)},
			Loads:     map[netsim.SiteID]proto.LoadReport{},
			OriginATL: time.Second,
		})
		if d.Target != 2 {
			t.Fatalf("tie break chose %v, want lowest id 2", d.Target)
		}
	}
}

func TestGroupByLocation(t *testing.T) {
	objs := []lockmgr.ObjectID{10, 11, 12, 13}
	locations := []proto.ObjConflict{
		conflict(10, 5),
		conflict(11, 5),
		conflict(12, 6),
		// 13 unlocated -> origin
	}
	partOf, siteOf := GroupByLocation(1, objs, locations)
	if partOf(0) != partOf(1) {
		t.Fatal("objects at the same site should share a group")
	}
	if partOf(0) == partOf(2) || partOf(2) == partOf(3) {
		t.Fatal("objects at different sites should not share a group")
	}
	if siteOf[partOf(0)] != 5 || siteOf[partOf(2)] != 6 || siteOf[partOf(3)] != 1 {
		t.Fatalf("siteOf mapping wrong: %v", siteOf)
	}
}

func TestGroupByLocationMultiHolderGoesToOrigin(t *testing.T) {
	objs := []lockmgr.ObjectID{10}
	locations := []proto.ObjConflict{conflict(10, 5, 6)}
	partOf, siteOf := GroupByLocation(1, objs, locations)
	if siteOf[partOf(0)] != 1 {
		t.Fatal("multi-holder object should group at origin")
	}
}

func TestGroupByLocationIgnoresShardHolders(t *testing.T) {
	// A replicated object reports its replica shard (site id <= 0)
	// among the holders. Shards are not execution sites: a sole client
	// holder still claims the group, and an object held only by shards
	// falls back to the origin.
	objs := []lockmgr.ObjectID{10, 11}
	locations := []proto.ObjConflict{
		conflict(10, 5, -1), // client 5 plus replica shard 1
		conflict(11, -1),    // replica shard only
	}
	partOf, siteOf := GroupByLocation(1, objs, locations)
	if siteOf[partOf(0)] != 5 {
		t.Fatalf("replicated object grouped at %d, want sole client holder 5", siteOf[partOf(0)])
	}
	if siteOf[partOf(1)] != 1 {
		t.Fatalf("shard-only object grouped at %d, want origin", siteOf[partOf(1)])
	}
}

func TestGroupByLocationMultiClientWithShardGoesToOrigin(t *testing.T) {
	// Several client holders plus a shard: still ambiguous, still the
	// origin's group.
	objs := []lockmgr.ObjectID{10}
	locations := []proto.ObjConflict{conflict(10, 5, 6, -2)}
	partOf, siteOf := GroupByLocation(1, objs, locations)
	if siteOf[partOf(0)] != 1 {
		t.Fatal("multi-client replicated object should group at origin")
	}
}

func TestChooseSiteNeverShipsToShard(t *testing.T) {
	// A replica shard among the conflict holders would rank first on
	// the conflict count; it must be excluded from the candidate set.
	d := ChooseSite(Params{
		Origin:   1,
		Deadline: time.Hour,
		Conflicts: []proto.ObjConflict{
			conflict(10, -1),
			conflict(11, -1),
		},
		OriginQueueLen: 3,
		OriginATL:      time.Second,
	})
	if d.Ship || d.Target != 1 {
		t.Fatalf("decision = %+v, want origin (shards are not execution sites)", d)
	}
}

func TestChooseSiteDataCountsOverride(t *testing.T) {
	// The server's whole-access-set counts outrank location-derived
	// tallies when larger.
	d := ChooseSite(Params{
		Origin:    1,
		Deadline:  time.Hour,
		Conflicts: []proto.ObjConflict{conflict(1, 2), conflict(2, 3)},
		Loads:     map[netsim.SiteID]proto.LoadReport{},
		DataCounts: map[netsim.SiteID]int{
			3: 7, // site 3 holds far more of the data
		},
		OriginATL: time.Second,
	})
	if d.Target != 3 {
		t.Fatalf("target = %v, want 3 (richer data)", d.Target)
	}
}

func TestChooseSiteMinShipDataGate(t *testing.T) {
	params := Params{
		Origin:             1,
		Deadline:           time.Hour,
		Conflicts:          []proto.ObjConflict{conflict(1, 2)},
		Loads:              map[netsim.SiteID]proto.LoadReport{},
		DataCounts:         map[netsim.SiteID]int{2: 2},
		OriginATL:          time.Second,
		RequireImprovement: true,
		MinShipData:        3,
	}
	if d := ChooseSite(params); d.Ship {
		t.Fatalf("gate ignored: %+v", d)
	}
	params.MinShipData = 2
	if d := ChooseSite(params); !d.Ship || d.Target != 2 {
		t.Fatalf("gate too strict: %+v", d)
	}
}

func TestChooseSiteExecutorsScaleWait(t *testing.T) {
	// With more executors the same queue implies less wait, keeping a
	// busy-but-parallel site feasible.
	base := Params{
		Origin:    1,
		Now:       0,
		Deadline:  30 * time.Second,
		Conflicts: []proto.ObjConflict{conflict(1, 2)},
		Loads: map[netsim.SiteID]proto.LoadReport{
			2: {Client: 2, QueueLen: 8, ATL: 10 * time.Second, Valid: true},
		},
		OriginATL: 10 * time.Second,
	}
	base.Executors = 1
	if d := ChooseSite(base); d.Ship {
		t.Fatalf("serial site should be infeasible: %+v", d)
	}
	base.Executors = 8
	if d := ChooseSite(base); !d.Ship {
		t.Fatalf("parallel site should be feasible: %+v", d)
	}
}

// A candidate whose load report is missing or stale (Valid false) must
// still clear H1 — with OriginATL substituted for its unknown ATL and an
// empty queue assumed — before it may compete. Without the substitute
// check, an unknown-load site skips the feasibility filter entirely,
// enters with wait = 0, and beats the origin on every queueing-delay
// tie even when the deadline leaves no room to execute there at all.
func TestChooseSiteUnknownLoadStillH1Filtered(t *testing.T) {
	base := Params{
		Origin: 1,
		Now:    0,
		// One ATL from now already overruns the deadline: no remote
		// site can serve this transaction in time.
		Deadline:  5 * time.Second,
		Conflicts: []proto.ObjConflict{conflict(1, 2)},
		OriginATL: 10 * time.Second,
	}
	cases := map[string]map[netsim.SiteID]proto.LoadReport{
		"missing report": {},
		"stale report":   {2: {Client: 2, QueueLen: 0, ATL: 10 * time.Second, Valid: false}},
	}
	for name, loads := range cases {
		p := base
		p.Loads = loads
		if d := ChooseSite(p); d.Ship {
			t.Errorf("%s: decision = %+v, want origin (site 2 cannot meet the deadline)", name, d)
		}
	}
	// A generous deadline keeps the unknown-load candidate eligible:
	// the substitute check must not turn "unknown" into "infeasible".
	p := base
	p.Loads = map[netsim.SiteID]proto.LoadReport{}
	p.Deadline = time.Hour
	if d := ChooseSite(p); !d.Ship || d.Target != 2 {
		t.Errorf("generous deadline: decision = %+v, want ship to 2", d)
	}
}
