// Package loadshare implements the decision logic of the paper's
// Section 4 load-sharing algorithm:
//
//   - H1 — can transaction T still make its deadline at this site, given
//     the queue ahead of it and the site's observed average transaction
//     length (ATL)?
//   - H2 — which site would have to wait for the fewest conflicting
//     locks to run T, breaking ties by estimated queueing delay?
//   - decomposition grouping — partition a decomposable transaction's
//     accesses by the sites currently caching them.
//
// The functions here are pure: the client actor supplies the state
// (conflict locations from the server, piggybacked load reports) and
// acts on the returned decision, so the heuristics are directly unit
// testable and reusable across configurations.
package loadshare

import (
	"sort"
	"time"

	"siteselect/internal/lockmgr"
	"siteselect/internal/netsim"
	"siteselect/internal/proto"
	"siteselect/internal/sched"
)

// H1Feasible evaluates heuristic H1 at a site: with queueLen
// transactions ahead and observed mean length atl, a transaction with
// the given absolute deadline has a reasonable chance of completing iff
// now + queueLen·atl ≤ deadline.
func H1Feasible(now time.Duration, queueLen int, atl, deadline time.Duration) bool {
	return sched.FeasibleH1(now, queueLen, atl, deadline)
}

// ConflictsAt returns how many of the conflicted objects would still
// require waiting for another site's locks if the transaction executed
// at site: an object stops conflicting only when site is its sole
// conflicting holder (its locks become local).
func ConflictsAt(site netsim.SiteID, conflicts []proto.ObjConflict) int {
	n := 0
	for _, c := range conflicts {
		resolved := len(c.Holders) == 1 && c.Holders[0] == site
		if !resolved {
			n++
		}
	}
	return n
}

// Decision is the outcome of a site-selection evaluation.
type Decision struct {
	// Target is the chosen execution site.
	Target netsim.SiteID
	// Ship is true when Target differs from the origin.
	Ship bool
	// Conflicts is the H2 conflict count at Target.
	Conflicts int
}

// Params carries the inputs to site selection.
type Params struct {
	Origin netsim.SiteID
	// Now and Deadline bound the feasibility checks.
	Now      time.Duration
	Deadline time.Duration
	// Conflicts lists the objects the server reported as conflicted,
	// with their conflicting holders (the H1-passed branch: a tentative
	// probe came back with conflict locations).
	Conflicts []proto.ObjConflict
	// Locations lists where the transaction's objects are cached in any
	// mode (the H1-failed branch: a location query came back). A site
	// holding many of the objects can serve them locally.
	Locations []proto.ObjConflict
	// Loads holds the known load reports (piggybacked at the server) of
	// candidate sites; missing entries are treated as unloaded.
	Loads map[netsim.SiteID]proto.LoadReport
	// OriginQueueLen and OriginATL describe the origin directly (the
	// client knows its own state more freshly than the server does).
	// Queue lengths count waiting transactions only; Executors divides
	// the estimated wait across a site's concurrent executor slots.
	OriginQueueLen int
	OriginATL      time.Duration
	Executors      int
	// DataCounts, when provided, overrides the location-derived data
	// availability per site (e.g. the server's whole-access-set counts
	// in a ConflictReply).
	DataCounts map[netsim.SiteID]int
	// RequireImprovement makes the origin win unless some site has
	// strictly fewer conflicts (the H1-passed branch of the pseudocode:
	// "IF another client is in a better position (H2) THEN ship").
	RequireImprovement bool
	// MinShipData additionally refuses to ship unless the target caches
	// at least this many of the transaction's objects — Section 3.1's
	// "significant percentage of a transaction's required data is
	// already cached at another site" condition. Zero disables the
	// check.
	MinShipData int
	// Trace, when set, observes the final decision (tracing).
	Trace func(Decision)
}

// ChooseSite evaluates H2 over the candidate sites (every reported
// holder, plus the origin) and returns the best execution site for the
// transaction.
//
// Ranking: fewest remaining lock conflicts first (H2 proper), then most
// of the transaction's data cached locally, then smallest estimated
// queueing delay (queue length × ATL / executors, per the load table),
// then lowest site id for determinism. Candidates whose queue fails H1
// feasibility are discarded (a site that cannot meet the deadline is
// never "in a better position").
func ChooseSite(p Params) Decision {
	execs := p.Executors
	if execs < 1 {
		execs = 1
	}
	dataAt := make(map[netsim.SiteID]int)
	for _, loc := range p.Locations {
		for _, h := range loc.Holders {
			dataAt[h]++
		}
	}
	for site, n := range p.DataCounts {
		if n > dataAt[site] {
			dataAt[site] = n
		}
	}
	type cand struct {
		site      netsim.SiteID
		conflicts int
		data      int
		wait      time.Duration
	}
	seen := map[netsim.SiteID]bool{p.Origin: true}
	cands := []cand{{
		site:      p.Origin,
		conflicts: ConflictsAt(p.Origin, p.Conflicts),
		data:      dataAt[p.Origin],
		wait:      time.Duration(p.OriginQueueLen) * p.OriginATL / time.Duration(execs),
	}}
	var holders []netsim.SiteID
	for _, c := range p.Conflicts {
		holders = append(holders, c.Holders...)
	}
	for _, c := range p.Locations {
		holders = append(holders, c.Holders...)
	}
	sort.Slice(holders, func(i, j int) bool { return holders[i] < holders[j] })
	for _, h := range holders {
		if h <= netsim.ServerSite {
			// Server shards (site ids <= 0) can appear among reported
			// holders when an object has a read replica out; they are
			// lock holders, not execution sites, and never ship targets.
			continue
		}
		if seen[h] {
			continue
		}
		seen[h] = true
		load, known := p.Loads[h]
		wait := time.Duration(0)
		atl := p.OriginATL
		if known && load.Valid {
			if load.ATL > 0 {
				atl = load.ATL
			}
			wait = time.Duration(load.QueueLen) * atl / time.Duration(execs)
		}
		// A shipped transaction joins the back of the candidate's
		// queue: H1 with one extra waiter. With no (valid) load report
		// the site is assumed idle but must still fit one execution at
		// the origin's observed ATL before the deadline — an unknown
		// load is not a license to skip feasibility.
		if p.Now+wait+atl > p.Deadline {
			continue
		}
		cands = append(cands, cand{
			site:      h,
			conflicts: ConflictsAt(h, p.Conflicts),
			data:      dataAt[h],
			wait:      wait,
		})
	}
	best := cands[0]
	for _, c := range cands[1:] {
		switch {
		case c.conflicts != best.conflicts:
			if c.conflicts < best.conflicts {
				best = c
			}
		case c.data != best.data:
			if c.data > best.data {
				best = c
			}
		case c.wait != best.wait:
			if c.wait < best.wait {
				best = c
			}
		case c.site < best.site:
			best = c
		}
	}
	if best.site != p.Origin {
		origin := cands[0]
		if p.RequireImprovement && best.conflicts >= origin.conflicts {
			best = origin
		} else if p.MinShipData > 0 && best.data < p.MinShipData {
			best = origin
		}
	}
	d := Decision{Target: best.site, Ship: best.site != p.Origin, Conflicts: best.conflicts}
	if p.Trace != nil {
		p.Trace(d)
	}
	return d
}

// GroupByLocation builds the decomposition partition of Section 3.2:
// each access is grouped by the client site that solely caches its
// object (reported in locations), with unlocated accesses grouped at
// the origin. Server shards among the holders (site ids <= 0, from read
// replicas) are not candidate executors and are ignored, so a
// replicated object still groups at its sole client holder; an object
// held by several clients falls back to the origin. The returned
// function maps an op index to a group key usable with
// txn.Transaction.Decompose, and the site map translates group keys
// back to execution sites.
func GroupByLocation(origin netsim.SiteID, objs []lockmgr.ObjectID, locations []proto.ObjConflict) (partOf func(int) int, siteOf map[int]netsim.SiteID) {
	where := make(map[lockmgr.ObjectID]netsim.SiteID, len(locations))
	for _, loc := range locations {
		sole := netsim.SiteID(0)
		clients := 0
		for _, h := range loc.Holders {
			if h > netsim.ServerSite {
				clients++
				sole = h
			}
		}
		if clients == 1 {
			where[loc.Obj] = sole
		}
	}
	siteOf = make(map[int]netsim.SiteID)
	keyOf := map[netsim.SiteID]int{}
	nextKey := 0
	keyFor := func(s netsim.SiteID) int {
		k, ok := keyOf[s]
		if !ok {
			k = nextKey
			nextKey++
			keyOf[s] = k
			siteOf[k] = s
		}
		return k
	}
	groups := make([]int, len(objs))
	for i, obj := range objs {
		site, ok := where[obj]
		if !ok {
			site = origin
		}
		groups[i] = keyFor(site)
	}
	partOf = func(i int) int { return groups[i] }
	return partOf, siteOf
}
