package config

import "testing"

func TestNormalizeSeed(t *testing.T) {
	tests := []struct {
		name string
		in   int64
	}{
		{"positive", 42},
		{"one", 1},
		{"zero", 0},
		{"negative", -7},
		{"min-int64", -1 << 63},
	}
	for _, tt := range tests {
		got := NormalizeSeed(tt.in)
		if got <= 0 {
			t.Errorf("%s: NormalizeSeed(%d) = %d, want positive", tt.name, tt.in, got)
		}
		if again := NormalizeSeed(tt.in); again != got {
			t.Errorf("%s: NormalizeSeed(%d) unstable: %d then %d", tt.name, tt.in, got, again)
		}
	}
	if NormalizeSeed(42) != 42 {
		t.Error("positive seed should pass through unchanged")
	}
	if NormalizeSeed(0) != 1 {
		t.Errorf("NormalizeSeed(0) = %d, want 1", NormalizeSeed(0))
	}
	if NormalizeSeed(-7) == NormalizeSeed(-8) {
		t.Error("distinct negative seeds collided")
	}
}

func TestCellSeedDistinctCells(t *testing.T) {
	// Every distinct coordinate tuple must get its own seed, including
	// tuples that differ only in one coordinate or in coordinate order.
	cells := [][]int64{
		{20, 10000, 0},
		{20, 10000, 1},
		{20, 10000, 2},
		{40, 10000, 0},
		{60, 10000, 0},
		{20, 50000, 0},
		{20, 200000, 0},
		{10000, 20, 0}, // order swap of the first tuple
		{0, 0, 0},
		{0, 0, 1},
		{-1, 0, 0},
	}
	seen := map[int64][]int64{}
	for _, c := range cells {
		s := CellSeed(1, c...)
		if s <= 0 {
			t.Fatalf("CellSeed(1, %v) = %d, want positive", c, s)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: %v and %v both map to %d", prev, c, s)
		}
		seen[s] = c
	}
}

func TestCellSeedStableAcrossCalls(t *testing.T) {
	for i := 0; i < 3; i++ {
		if CellSeed(7, 20, 10000, 1) != CellSeed(7, 20, 10000, 1) {
			t.Fatal("CellSeed not stable across calls")
		}
	}
}

func TestCellSeedMasterNormalized(t *testing.T) {
	// Zero and one are the same master (zero is the unset sentinel).
	if CellSeed(0, 20, 0) != CellSeed(1, 20, 0) {
		t.Error("master seed 0 should normalize to 1")
	}
	// A negative master is usable and distinct from its absolute value.
	if CellSeed(-5, 20, 0) <= 0 {
		t.Error("negative master produced non-positive cell seed")
	}
	if CellSeed(-5, 20, 0) == CellSeed(5, 20, 0) {
		t.Error("negative master collided with its absolute value")
	}
	// Distinct masters give distinct cell streams.
	if CellSeed(1, 20, 0) == CellSeed(2, 20, 0) {
		t.Error("distinct masters collided on the same cell")
	}
}

func TestUpdateCoord(t *testing.T) {
	tests := []struct {
		update float64
		want   int64
	}{
		{0.01, 10000},
		{0.05, 50000},
		{0.20, 200000},
		{0, 0},
		{1, 1000000},
	}
	for _, tt := range tests {
		if got := UpdateCoord(tt.update); got != tt.want {
			t.Errorf("UpdateCoord(%v) = %d, want %d", tt.update, got, tt.want)
		}
	}
}
