package config

import (
	"fmt"
	"time"
)

// Topology describes the server tier: how many server shards partition
// the object space, the object→shard partition function, and how read
// replicas are provisioned — statically via a placement map, or
// adaptively from observed access heat on the simulated clock.
//
// The zero value is the paper's topology: one server owning the whole
// database, no replicas. Every simulation built with it is byte-
// identical to a build without the sharding layer (the differential
// corpus test TestCorpusSingleShard pins this).
type Topology struct {
	// Servers is the number of server shards (M). Zero and one both mean
	// the single-server topology.
	Servers int

	// Block is the block-cyclic partition width: objects are assigned to
	// shards in contiguous runs of Block ids ((obj/Block) mod M). Zero
	// and one both mean plain round-robin, which spreads any contiguous
	// access range evenly; larger blocks keep neighboring objects
	// together, so a compact hot set lands on few shards — the imbalance
	// adaptive replication is there to fix.
	Block int

	// ReplicateHot is the number of shared-mode accesses within one
	// HeatWindow that makes an object hot enough to gain a read replica
	// on another shard. Zero disables adaptive replication.
	ReplicateHot int
	// HeatWindow is the sliding window, on the simulated clock, over
	// which access heat is counted (both for gaining a replica at the
	// home shard and for shedding a cold one at the replica shard).
	HeatWindow time.Duration
	// ShedBelow is the heat below which a replica shard sheds its copy
	// at the end of a HeatWindow. Zero selects 1 (shed only when the
	// window saw no reads at all).
	ShedBelow int

	// Replicas is the static replica placement map (object → replica
	// shard), installed before the run starts. Unlike adaptive replicas,
	// static ones are never shed for coldness (a writer still recalls
	// them through the ordinary coherence path). Nil means no static
	// placement.
	Replicas map[int]int
}

// NumServers returns the effective shard count (at least 1).
func (t Topology) NumServers() int {
	if t.Servers < 1 {
		return 1
	}
	return t.Servers
}

// Enabled reports whether the multi-server topology is active.
func (t Topology) Enabled() bool { return t.NumServers() > 1 }

// Shard is the object→shard partition function: block-cyclic with
// width Block — plain round-robin at the default width 1, so every
// contiguous access range touches all shards evenly.
func (t Topology) Shard(obj int) int {
	m := t.NumServers()
	if m == 1 {
		return 0
	}
	if t.Block > 1 {
		return (obj / t.Block) % m
	}
	return obj % m
}

// Adaptive reports whether heat-driven replica provision is on.
func (t Topology) Adaptive() bool { return t.ReplicateHot > 0 && t.Enabled() }

// EffectiveShedBelow returns the shed threshold with its default.
func (t Topology) EffectiveShedBelow() int {
	if t.ShedBelow < 1 {
		return 1
	}
	return t.ShedBelow
}

// validate reports the first invalid topology parameter. dbSize bounds
// the static placement map.
func (t Topology) validate(dbSize int) error {
	switch {
	case t.Servers < 0:
		return fmt.Errorf("config: Sharding.Servers %d must be non-negative", t.Servers)
	case t.Block < 0:
		return fmt.Errorf("config: Sharding.Block %d must be non-negative", t.Block)
	case t.ReplicateHot < 0:
		return fmt.Errorf("config: Sharding.ReplicateHot %d must be non-negative", t.ReplicateHot)
	case t.ReplicateHot > 0 && t.NumServers() == 1:
		return fmt.Errorf("config: Sharding.ReplicateHot requires at least two servers")
	case t.ReplicateHot > 0 && t.HeatWindow <= 0:
		return fmt.Errorf("config: Sharding.HeatWindow must be positive when ReplicateHot is set")
	case t.ShedBelow < 0:
		return fmt.Errorf("config: Sharding.ShedBelow %d must be non-negative", t.ShedBelow)
	}
	for obj, shard := range t.Replicas {
		switch {
		case obj < 0 || obj >= dbSize:
			return fmt.Errorf("config: Sharding.Replicas object %d out of [0,%d)", obj, dbSize)
		case shard < 0 || shard >= t.NumServers():
			return fmt.Errorf("config: Sharding.Replicas[%d] shard %d out of [0,%d)", obj, shard, t.NumServers())
		case shard == t.Shard(obj):
			return fmt.Errorf("config: Sharding.Replicas[%d] places the replica on its home shard %d", obj, shard)
		case t.NumServers() == 1:
			return fmt.Errorf("config: Sharding.Replicas requires at least two servers")
		}
	}
	return nil
}
