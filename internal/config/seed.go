package config

// Per-cell seed derivation for the parallel experiment harness.
//
// An experiment grid fans out many independent simulation cells —
// (client count, update mix, replication) coordinates — and the harness
// must give every cell its own random stream while keeping the whole
// grid a pure function of one master seed. Deriving each cell's seed by
// SplitMix64-chaining the cell coordinates into the master seed makes
// the result independent of worker count and completion order: the same
// master seed produces bit-identical aggregated results whether the
// grid runs on one goroutine or sixteen.
//
// The coordinates deliberately exclude the system or variant under
// test: all systems evaluated at one workload point share the workload
// stream, preserving the paired A/B comparisons the sequential harness
// had (every run used to share the single master seed).

// splitmix64 is the finalizer of the SplitMix64 generator (Steele,
// Lea & Flood, OOPSLA 2014) — a full-avalanche mix of one 64-bit word.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NormalizeSeed maps an arbitrary master seed onto the positive range
// the experiment harness uses: positive seeds pass through untouched,
// zero (the "unset" sentinel) becomes 1, and negative seeds are remixed
// to a stable positive value so they remain usable and distinct.
func NormalizeSeed(s int64) int64 {
	if s > 0 {
		return s
	}
	if s == 0 {
		return 1
	}
	r := int64(splitmix64(uint64(s)) & (1<<63 - 1))
	if r == 0 {
		r = 1
	}
	return r
}

// CellSeed derives the seed for one experiment cell from the master
// seed and the cell's integer coordinates. Each coordinate is avalanched
// through SplitMix64 before being folded into the running state, so
// nearby coordinates (rep 0 vs rep 1, 20 vs 40 clients) yield unrelated
// streams and coordinate order matters. The result is always positive
// and stable across calls.
func CellSeed(master int64, coords ...int64) int64 {
	z := uint64(NormalizeSeed(master))
	for _, c := range coords {
		z = splitmix64(z ^ splitmix64(uint64(c)))
	}
	s := int64(z & (1<<63 - 1))
	if s == 0 {
		s = 1
	}
	return s
}

// UpdateCoord converts an update fraction in [0,1] to the integer
// coordinate used in seed derivation (micro-units, so 0.01 and 0.0100001
// stay distinguishable while float formatting noise does not matter).
func UpdateCoord(update float64) int64 {
	return int64(update*1e6 + 0.5)
}
