package config

import (
	"strings"
	"testing"
	"time"
)

func TestTopologyDefaults(t *testing.T) {
	var topo Topology
	if got := topo.NumServers(); got != 1 {
		t.Fatalf("NumServers() = %d, want 1", got)
	}
	if topo.Enabled() {
		t.Fatal("zero topology must not be Enabled")
	}
	if topo.Adaptive() {
		t.Fatal("zero topology must not be Adaptive")
	}
	for obj := 0; obj < 10; obj++ {
		if got := topo.Shard(obj); got != 0 {
			t.Fatalf("Shard(%d) = %d, want 0 on single server", obj, got)
		}
	}
	if got := topo.EffectiveShedBelow(); got != 1 {
		t.Fatalf("EffectiveShedBelow() = %d, want 1", got)
	}
}

func TestTopologyPartition(t *testing.T) {
	topo := Topology{Servers: 4}
	counts := make(map[int]int)
	for obj := 0; obj < 400; obj++ {
		s := topo.Shard(obj)
		if s < 0 || s >= 4 {
			t.Fatalf("Shard(%d) = %d out of range", obj, s)
		}
		counts[s]++
	}
	for s, n := range counts {
		if n != 100 {
			t.Fatalf("shard %d owns %d objects, want 100 (even round-robin)", s, n)
		}
	}
}

func TestTopologyValidate(t *testing.T) {
	base := Default(10, 0.2)
	cases := []struct {
		name string
		topo Topology
		want string // substring of the error, "" = valid
	}{
		{"zero", Topology{}, ""},
		{"sharded", Topology{Servers: 4}, ""},
		{"adaptive", Topology{Servers: 2, ReplicateHot: 3, HeatWindow: time.Second}, ""},
		{"static", Topology{Servers: 2, Replicas: map[int]int{0: 1}}, ""},
		{"negative servers", Topology{Servers: -1}, "Servers"},
		{"hot without servers", Topology{ReplicateHot: 3, HeatWindow: time.Second}, "two servers"},
		{"hot without window", Topology{Servers: 2, ReplicateHot: 3}, "HeatWindow"},
		{"negative shed", Topology{Servers: 2, ShedBelow: -1}, "ShedBelow"},
		{"replica out of range", Topology{Servers: 2, Replicas: map[int]int{0: 2}}, "shard 2"},
		{"replica on home", Topology{Servers: 2, Replicas: map[int]int{1: 1}}, "home shard"},
		{"replica object bad", Topology{Servers: 2, Replicas: map[int]int{-1: 1}}, "object"},
	}
	for _, tc := range cases {
		cfg := base
		cfg.Sharding = tc.topo
		err := cfg.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestPartitionShardValidate(t *testing.T) {
	cfg := Default(10, 0.2)
	cfg.Faults.PartitionShard = 1
	if err := cfg.Validate(); err == nil {
		t.Fatal("PartitionShard 1 with a single server must be rejected")
	}
	cfg.Sharding.Servers = 2
	if err := cfg.Validate(); err != nil {
		t.Fatalf("PartitionShard 1 with two servers: unexpected error %v", err)
	}
}
