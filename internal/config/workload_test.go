package config

import (
	"strings"
	"testing"
	"time"
)

// workloadBase returns a valid config carrying a declarative workload,
// the starting point every corruption case mutates.
func workloadBase() Config {
	c := Default(6, 0.20)
	c.Workload = &WorkloadSpec{Classes: []ClientClass{
		{
			Name:  "web",
			Count: 4,
			Phases: []ArrivalPhase{
				{Kind: ArrivalClosed, MeanInterArrival: 4 * time.Second, Duration: time.Minute},
				{Kind: ArrivalOpen, Rate: 0.5},
			},
		},
		{
			Name:  "batch",
			Count: 2,
			Phases: []ArrivalPhase{
				{Kind: ArrivalBurst, BurstSize: 5, BurstEvery: 30 * time.Second, Duration: time.Minute},
				{Kind: ArrivalDiurnal, Rate: 0.1, Peak: 0.5, Period: 2 * time.Minute, Duration: time.Minute},
				{Kind: ArrivalFlash, Rate: 0.1, Peak: 1, Ramp: 10 * time.Second},
			},
			Access: &AccessSpec{
				Kind: AccessSkewed, ZipfTheta: 0.9,
				HotSize: 50, HotFraction: 0.5,
				DriftEvery: 30 * time.Second, DriftStep: 100,
			},
		},
	}}
	return c
}

func TestValidateWorkloadAcceptsBase(t *testing.T) {
	if err := workloadBase().Validate(); err != nil {
		t.Fatalf("base workload config should validate, got: %v", err)
	}
}

// TestValidateWorkloadCatchesBadFields corrupts, one at a time, every
// workload field the scenario compiler can set — class counts, workload
// parameters, each arrival kind's phase parameters, phase durations,
// and access-skew parameters — and checks Validate rejects each with a
// diagnostic naming the class at fault.
func TestValidateWorkloadCatchesBadFields(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(*Config)
		want    string
	}{
		{"no classes", func(c *Config) { c.Workload.Classes = nil }, "no client classes"},
		{"count mismatch", func(c *Config) { c.NumClients = 7 }, "cover 6 clients, NumClients is 7"},
		{"zero count", func(c *Config) {
			c.Workload.Classes[0].Count = 0
			c.NumClients = 2
		}, "class web: count must be positive"},
		{"negative length", func(c *Config) { c.Workload.Classes[0].MeanLength = -time.Second }, "class web: MeanLength"},
		{"negative slack", func(c *Config) { c.Workload.Classes[0].MeanSlack = -time.Second }, "class web: MeanSlack"},
		{"negative objects", func(c *Config) { c.Workload.Classes[0].MeanObjects = -1 }, "class web: MeanObjects"},
		{"objects beyond db", func(c *Config) { c.Workload.Classes[1].MeanObjects = c.DBSize + 1 }, "class batch: MeanObjects"},
		{"updates out of range", func(c *Config) { c.Workload.Classes[0].UpdateFraction = 1.5 }, "class web: UpdateFraction"},
		{"decomposable out of range", func(c *Config) { c.Workload.Classes[0].DecomposableFraction = -0.1 }, "class web: DecomposableFraction"},
		{"no phases", func(c *Config) { c.Workload.Classes[0].Phases = nil }, "class web: needs at least one arrival phase"},
		{"negative phase duration", func(c *Config) { c.Workload.Classes[0].Phases[0].Duration = -time.Second }, "duration must be non-negative"},
		{"open-ended inner phase", func(c *Config) { c.Workload.Classes[0].Phases[0].Duration = 0 }, "only the last phase may leave duration unset"},
		{"unknown arrival kind", func(c *Config) { c.Workload.Classes[0].Phases[0].Kind = ArrivalKind(99) }, "unknown arrival kind"},
		{"closed without interarrival", func(c *Config) { c.Workload.Classes[0].Phases[0].MeanInterArrival = 0 }, "closed-loop phase needs a positive interarrival"},
		{"open without rate", func(c *Config) { c.Workload.Classes[0].Phases[1].Rate = 0 }, "open-loop phase needs a positive rate"},
		{"burst without size", func(c *Config) { c.Workload.Classes[1].Phases[0].BurstSize = 0 }, "burst phase needs a positive size"},
		{"burst without every", func(c *Config) { c.Workload.Classes[1].Phases[0].BurstEvery = 0 }, "burst phase needs a positive every interval"},
		{"burst negative spread", func(c *Config) { c.Workload.Classes[1].Phases[0].BurstSpread = -time.Second }, "burst spread must be non-negative"},
		{"diurnal without rate", func(c *Config) { c.Workload.Classes[1].Phases[1].Rate = 0 }, "diurnal phase needs a positive trough rate"},
		{"diurnal peak below trough", func(c *Config) { c.Workload.Classes[1].Phases[1].Peak = 0.01 }, "diurnal peak must be at least the trough rate"},
		{"diurnal without period", func(c *Config) { c.Workload.Classes[1].Phases[1].Period = 0 }, "diurnal phase needs a positive period"},
		{"flash without rate", func(c *Config) { c.Workload.Classes[1].Phases[2].Rate = 0 }, "flash phase needs a positive base rate"},
		{"flash peak below base", func(c *Config) { c.Workload.Classes[1].Phases[2].Peak = 0.01 }, "flash peak must be at least the base rate"},
		{"flash negative ramp", func(c *Config) { c.Workload.Classes[1].Phases[2].Ramp = -time.Second }, "flash ramp must be non-negative"},
		{"unknown access kind", func(c *Config) { c.Workload.Classes[1].Access.Kind = AccessKind(99) }, "unknown access kind"},
		{"skewed negative theta", func(c *Config) { c.Workload.Classes[1].Access.ZipfTheta = -0.1 }, "ZipfTheta"},
		{"skewed hot fraction out of range", func(c *Config) { c.Workload.Classes[1].Access.HotFraction = 1.5 }, "HotFraction"},
		{"skewed hot size beyond db", func(c *Config) { c.Workload.Classes[1].Access.HotSize = c.DBSize + 1 }, "HotSize"},
		{"skewed negative drift-every", func(c *Config) { c.Workload.Classes[1].Access.DriftEvery = -time.Second }, "DriftEvery must be non-negative"},
		{"skewed drift without step", func(c *Config) { c.Workload.Classes[1].Access.DriftStep = 0 }, "DriftStep must be positive when DriftEvery is set"},
		{"hot-cold hot size", func(c *Config) {
			c.Workload.Classes[1].Access = &AccessSpec{Kind: AccessHotCold, HotSize: 0, HotFraction: 0.5}
		}, "HotSize"},
		{"hot-cold hot fraction", func(c *Config) {
			c.Workload.Classes[1].Access = &AccessSpec{Kind: AccessHotCold, HotSize: 50, HotFraction: -0.5}
		}, "HotFraction"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := workloadBase()
			tc.corrupt(&c)
			err := c.Validate()
			if err == nil {
				t.Fatalf("Validate accepted the corrupted config; want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestWorkloadClassOf(t *testing.T) {
	w := workloadBase().Workload
	for i, want := range map[int]int{1: 0, 4: 0, 5: 1, 6: 1} {
		if got := w.ClassOf(i); got != want {
			t.Errorf("ClassOf(%d) = %d, want %d", i, got, want)
		}
	}
	if got := w.TotalClients(); got != 6 {
		t.Errorf("TotalClients() = %d, want 6", got)
	}
}
