// Package config holds the experiment parameters: the paper's Table 1
// values plus the simulation-only knobs (device timings, collection
// window, run length) that substitute for the authors' physical testbed.
package config

import (
	"errors"
	"fmt"
	"time"
)

// AccessPattern selects the workload's object access generator.
type AccessPattern int

// Access patterns.
const (
	// PatternLocalizedRW is the paper's pattern: 75% of a client's
	// accesses in its own region, the rest Zipf over the remainder.
	PatternLocalizedRW AccessPattern = iota + 1
	// PatternUniform spreads accesses uniformly (no locality).
	PatternUniform
	// PatternHotCold sends LocalFraction of accesses to a globally
	// shared hot set of HotRegionSize objects.
	PatternHotCold
)

// String names the pattern.
func (p AccessPattern) String() string {
	switch p {
	case PatternLocalizedRW:
		return "localized-rw"
	case PatternUniform:
		return "uniform"
	case PatternHotCold:
		return "hot-cold"
	default:
		return fmt.Sprintf("AccessPattern(%d)", int(p))
	}
}

// NetTopology selects the interconnect model.
type NetTopology int

// Interconnect models.
const (
	// TopologySharedBus serializes all transmissions on one medium (the
	// paper's 10 Mbps Ethernet).
	TopologySharedBus NetTopology = iota + 1
	// TopologySwitched gives every message the full bandwidth (a
	// non-blocking switch); only latency and per-message transmission
	// time remain.
	TopologySwitched
)

// String names the topology.
func (t NetTopology) String() string {
	switch t {
	case TopologySharedBus:
		return "shared-bus"
	case TopologySwitched:
		return "switched"
	default:
		return fmt.Sprintf("NetTopology(%d)", int(t))
	}
}

// DeadlinePolicy selects how transaction deadlines are generated.
type DeadlinePolicy int

// Deadline policies.
const (
	// DeadlineLengthPlusSlack sets deadline = arrival + length +
	// exponential slack, so an unobstructed transaction always makes
	// its deadline and every miss is system-induced (the default; see
	// DESIGN.md).
	DeadlineLengthPlusSlack DeadlinePolicy = iota + 1
	// DeadlineIndependent sets deadline = arrival + exponential offset
	// independent of the execution length (the literal reading of
	// Table 1), which caps every system's success near
	// P(offset > length) regardless of load.
	DeadlineIndependent
)

// SchedPolicy selects the executor-queue discipline.
type SchedPolicy int

// Scheduling policies.
const (
	// SchedEDF serves earliest deadlines first (the paper's ED policy).
	SchedEDF SchedPolicy = iota + 1
	// SchedFCFS serves in arrival order — the baseline that shows what
	// deadline-aware scheduling buys.
	SchedFCFS
)

// Config parameterizes one simulated system.
type Config struct {
	// NumClients is the number of client sites.
	NumClients int
	// DBSize is the number of database objects (Table 1: 10,000).
	DBSize int

	// ServerMemory is the server buffer capacity in objects
	// (Table 1: 5,000 centralized; 1,000 client-server).
	ServerMemory int
	// ClientMemory and ClientDisk are the client cache tier capacities
	// (Table 1: 500 each).
	ClientMemory int
	ClientDisk   int

	// MeanInterArrival, MeanLength, MeanSlack are the per-client
	// workload timings (Table 1: 10 s Poisson, 10 s exponential, 20 s
	// exponential).
	MeanInterArrival time.Duration
	MeanLength       time.Duration
	MeanSlack        time.Duration
	// MeanObjects is the mean access-set size (Table 1: 10).
	MeanObjects int
	// UpdateFraction is the probability an access updates (Table 1:
	// 0.01 / 0.05 / 0.20).
	UpdateFraction float64
	// DecomposableFraction is the share of decomposable transactions
	// (Section 5.1: 10%).
	DecomposableFraction float64

	// Pattern selects the access generator (Localized-RW by default).
	Pattern AccessPattern
	// Deadlines selects the deadline-generation policy.
	Deadlines DeadlinePolicy
	// Scheduling selects the executor-queue discipline.
	Scheduling SchedPolicy
	// HotRegionSize and LocalFraction shape Localized-RW (Section 5.1:
	// 75% of accesses to a region, rest Zipf) and the hot set of
	// PatternHotCold.
	HotRegionSize int
	LocalFraction float64
	ZipfTheta     float64

	// DiskRead and DiskWrite are per-page device times.
	DiskRead  time.Duration
	DiskWrite time.Duration
	// NetLatency and NetBandwidthBps model the LAN; Topology selects
	// shared-bus (default) or switched delivery.
	NetLatency      time.Duration
	NetBandwidthBps float64
	Topology        NetTopology

	// ServerOpCPU is the server CPU cost of one unit of low-level
	// database work: handling a client message in the client-server
	// systems, or accessing one object in the centralized system
	// (buffer management, lock tables, thread scheduling). Calibrated
	// at ~12 ms from the paper's Table 3, whose uncontended shared-lock
	// response time is 24 ms on the authors' hardware (CPU service plus
	// a server disk read plus the LAN). This single cost reproduces
	// both the centralized server's saturation as clients are added and
	// the growth of client-server object response times with client
	// count.
	ServerOpCPU time.Duration

	// ServerThreads caps concurrent transactions at the centralized
	// server (Section 5.1: up to one hundred).
	ServerThreads int
	// ClientExecutors caps concurrent local transactions per client.
	ClientExecutors int

	// CollectionWindow is the forward-list batching window (LS only).
	CollectionWindow time.Duration
	// BatchWindow is the server-side request batching window: incoming
	// firm requests accumulate for this long on the simulated clock,
	// then the server grants every mutually compatible lock in one pass
	// and coalesces the resulting ships and recalls per destination
	// into single messages. Commit-time log forces are widened by the
	// same window so concurrent committers share one disk write. Zero
	// (the default) disables batching entirely and is byte-identical to
	// a build without the batching layer. Must stay well under
	// MeanSlack — a window that eats the whole slack budget would deny
	// every transaction.
	BatchWindow time.Duration
	// MaxSubtasks caps decomposition fan-out.
	MaxSubtasks int

	// Load-sharing feature toggles (for the ablation experiments; all
	// true in the paper's LS-CS-RTDBS).
	UseH1            bool
	UseH2            bool
	UseDecomposition bool
	UseForwardLists  bool
	UseDowngrade     bool
	// UseLogging enables client-based write-ahead logging (the recovery
	// scheme of the framework the paper builds on, its reference [16]):
	// each committing update appends a log record and the commit forces
	// the log tail to the site's disk, with group commit batching
	// concurrent forces. Off by default — the paper does not charge
	// logging costs; the ablation quantifies them.
	UseLogging bool
	// WriteThrough makes clients push each committed update to the
	// server immediately instead of retaining dirty copies until a
	// callback (the paper's systems are write-back; this ablation
	// quantifies what that buys). The client keeps its exclusive lock.
	WriteThrough bool
	// UseSpeculation enables the speculative processing extension the
	// paper's conclusion names as future work: a transaction whose only
	// missing pieces are exclusive upgrades of shared copies it already
	// caches starts computing against those copies while the upgrades
	// are in flight, and keeps the overlapped work if the versions
	// validate on arrival. Off by default (not part of the paper's
	// evaluated system).
	UseSpeculation bool

	// Fault injection: client OutageClient (0 = none) is partitioned
	// from OutageAt for OutageDuration — it processes no messages and
	// restarts with a cold cache. Dirty (committed but unreturned)
	// updates survive only when UseLogging is on; otherwise they are
	// lost, which the LostUpdates counter reports. This models a client
	// reboot with (or without) the client-based recovery log.
	OutageClient   int
	OutageAt       time.Duration
	OutageDuration time.Duration

	// Faults configures deterministic network fault injection (message
	// drop, duplication, latency spikes, timed partitions). The zero
	// value disables it entirely, leaving the fault-free simulation
	// byte-identical to a build without the fault layer.
	Faults FaultSpec

	// Sharding describes the server tier topology: how many server
	// shards partition the object space and how read replicas are
	// provisioned (see Topology). The zero value is the paper's single
	// server, which leaves every simulation byte-identical to a build
	// without the sharding layer.
	Sharding Topology

	// RetryTimeout is the base client retransmission timeout for
	// request–reply messages, doubled on each successive retry of the
	// same request and always bounded by the transaction deadline. It
	// takes effect only when Faults.Enabled(); zero selects a default
	// derived from MeanSlack (see EffectiveRetryTimeout).
	RetryTimeout time.Duration

	// CheckInvariants attaches the continuous invariant monitor
	// (internal/invariant) to the run: lock-table consistency,
	// forward-list well-formedness, request conservation, and
	// no-committed-lost-updates are re-checked as the simulation
	// executes. Off by default; the test tier turns it on.
	CheckInvariants bool

	// Trace enables the per-transaction event tracer (internal/trace):
	// every transaction accumulates a typed event timeline and a slack
	// attribution splitting its lifetime into queue / lock-wait /
	// network / exec / retry / fanout components. Off by default; the
	// fault-free simulation with tracing off is byte-identical to a
	// build without the trace layer.
	Trace bool

	// Workload, when non-nil, replaces the flat Table 1 workload with a
	// declarative multi-class spec: heterogeneous client classes with
	// phased arrival processes and per-class access skew (the scenario
	// DSL compiles onto this). Nil preserves the original generators
	// byte for byte.
	Workload *WorkloadSpec

	// Duration is how long transaction generation runs; the simulation
	// then drains for Drain before results are read. Transactions
	// arriving before Warmup are executed but excluded from statistics
	// (caches start cold).
	Duration time.Duration
	Drain    time.Duration
	Warmup   time.Duration

	// Seed drives every random stream in the run.
	Seed int64
}

// Default returns the paper's Table 1 configuration for a client-server
// system with n clients and the given update fraction.
func Default(n int, updateFraction float64) Config {
	return Config{
		NumClients:           n,
		DBSize:               10000,
		ServerMemory:         1000,
		ClientMemory:         500,
		ClientDisk:           500,
		MeanInterArrival:     10 * time.Second,
		MeanLength:           10 * time.Second,
		MeanSlack:            20 * time.Second,
		MeanObjects:          10,
		UpdateFraction:       updateFraction,
		DecomposableFraction: 0.10,
		Pattern:              PatternLocalizedRW,
		Deadlines:            DeadlineLengthPlusSlack,
		Scheduling:           SchedEDF,
		HotRegionSize:        500,
		LocalFraction:        0.75,
		ZipfTheta:            0.9,
		DiskRead:             12 * time.Millisecond,
		DiskWrite:            12 * time.Millisecond,
		NetLatency:           500 * time.Microsecond,
		NetBandwidthBps:      10e6,
		Topology:             TopologySharedBus,
		ServerOpCPU:          12 * time.Millisecond,
		ServerThreads:        100,
		ClientExecutors:      4,
		CollectionWindow:     500 * time.Millisecond,
		MaxSubtasks:          4,
		UseH1:                true,
		UseH2:                true,
		UseDecomposition:     true,
		UseForwardLists:      true,
		UseDowngrade:         true,
		Duration:             30 * time.Minute,
		Drain:                2 * time.Minute,
		Warmup:               10 * time.Minute,
		Seed:                 1,
	}
}

// DefaultCentralized returns the Table 1 configuration for the
// centralized system (larger server buffer; clients are terminals).
func DefaultCentralized(n int, updateFraction float64) Config {
	c := Default(n, updateFraction)
	c.ServerMemory = 5000
	return c
}

// Validate reports the first invalid parameter.
func (c Config) Validate() error {
	switch {
	case c.NumClients <= 0:
		return errors.New("config: NumClients must be positive")
	case c.DBSize <= 0:
		return errors.New("config: DBSize must be positive")
	case c.ServerMemory <= 0:
		return errors.New("config: ServerMemory must be positive")
	case c.ClientMemory <= 0:
		return errors.New("config: ClientMemory must be positive")
	case c.ClientDisk < 0:
		return errors.New("config: ClientDisk must be non-negative")
	case c.MeanInterArrival <= 0:
		return errors.New("config: MeanInterArrival must be positive")
	case c.MeanLength <= 0:
		return errors.New("config: MeanLength must be positive")
	case c.MeanSlack <= 0:
		return errors.New("config: MeanSlack must be positive")
	case c.MeanObjects <= 0:
		return errors.New("config: MeanObjects must be positive")
	case c.UpdateFraction < 0 || c.UpdateFraction > 1:
		return fmt.Errorf("config: UpdateFraction %v out of [0,1]", c.UpdateFraction)
	case c.DecomposableFraction < 0 || c.DecomposableFraction > 1:
		return fmt.Errorf("config: DecomposableFraction %v out of [0,1]", c.DecomposableFraction)
	case c.Pattern < 0 || c.Pattern > PatternHotCold:
		return fmt.Errorf("config: unknown access pattern %d", int(c.Pattern))
	case c.Deadlines < 0 || c.Deadlines > DeadlineIndependent:
		return fmt.Errorf("config: unknown deadline policy %d", int(c.Deadlines))
	case c.Scheduling < 0 || c.Scheduling > SchedFCFS:
		return fmt.Errorf("config: unknown scheduling policy %d", int(c.Scheduling))
	case c.Topology < 0 || c.Topology > TopologySwitched:
		return fmt.Errorf("config: unknown topology %d", int(c.Topology))
	case c.HotRegionSize <= 0 || c.HotRegionSize > c.DBSize:
		return fmt.Errorf("config: HotRegionSize %d out of (0,%d]", c.HotRegionSize, c.DBSize)
	case c.LocalFraction < 0 || c.LocalFraction > 1:
		return fmt.Errorf("config: LocalFraction %v out of [0,1]", c.LocalFraction)
	case c.ServerThreads <= 0:
		return errors.New("config: ServerThreads must be positive")
	case c.ClientExecutors <= 0:
		return errors.New("config: ClientExecutors must be positive")
	case c.CollectionWindow < 0:
		return errors.New("config: CollectionWindow must be non-negative")
	case c.BatchWindow < 0:
		return errors.New("config: BatchWindow must be non-negative")
	case c.BatchWindow > 0 && c.BatchWindow >= c.MeanSlack:
		return fmt.Errorf("config: BatchWindow %v must stay below MeanSlack %v", c.BatchWindow, c.MeanSlack)
	case c.MaxSubtasks < 2:
		return errors.New("config: MaxSubtasks must be at least 2")
	case c.Duration <= 0:
		return errors.New("config: Duration must be positive")
	case c.Drain < 0:
		return errors.New("config: Drain must be non-negative")
	case c.Warmup < 0 || c.Warmup >= c.Duration:
		return fmt.Errorf("config: Warmup %v out of [0, Duration)", c.Warmup)
	case c.OutageClient < 0 || c.OutageClient > c.NumClients:
		return fmt.Errorf("config: OutageClient %d out of [0,%d]", c.OutageClient, c.NumClients)
	case c.OutageClient > 0 && c.OutageDuration <= 0:
		return errors.New("config: OutageDuration must be positive when OutageClient is set")
	case c.Faults.DropRate < 0 || c.Faults.DropRate > 1:
		return fmt.Errorf("config: Faults.DropRate %v out of [0,1]", c.Faults.DropRate)
	case c.Faults.DupRate < 0 || c.Faults.DupRate > 1:
		return fmt.Errorf("config: Faults.DupRate %v out of [0,1]", c.Faults.DupRate)
	case c.Faults.SpikeRate < 0 || c.Faults.SpikeRate > 1:
		return fmt.Errorf("config: Faults.SpikeRate %v out of [0,1]", c.Faults.SpikeRate)
	case c.Faults.SpikeRate > 0 && c.Faults.SpikeLatency <= 0:
		return errors.New("config: Faults.SpikeLatency must be positive when SpikeRate is set")
	case c.Faults.PartitionSite < 0 || c.Faults.PartitionSite > c.NumClients:
		return fmt.Errorf("config: Faults.PartitionSite %d out of [0,%d]", c.Faults.PartitionSite, c.NumClients)
	case c.Faults.PartitionDuration < 0:
		return errors.New("config: Faults.PartitionDuration must be non-negative")
	case c.RetryTimeout < 0:
		return errors.New("config: RetryTimeout must be non-negative")
	case c.Faults.PartitionShard < 0 || c.Faults.PartitionShard >= c.Sharding.NumServers():
		return fmt.Errorf("config: Faults.PartitionShard %d out of [0,%d)", c.Faults.PartitionShard, c.Sharding.NumServers())
	case c.ZipfTheta < 0:
		return fmt.Errorf("config: ZipfTheta %v must be non-negative", c.ZipfTheta)
	}
	if err := c.Sharding.validate(c.DBSize); err != nil {
		return err
	}
	if c.Workload != nil {
		return c.validateWorkload()
	}
	return nil
}

// FaultSpec parameterizes the deterministic network fault layer. Rates
// are per-message probabilities evaluated at send time from a dedicated
// seed-derived stream, so the same Config produces the same fault
// sequence on every run regardless of worker count.
type FaultSpec struct {
	// DropRate drops a message in transit (the sender never learns).
	DropRate float64
	// DupRate delivers an extra copy of a message one latency later.
	// Reliable (sequence-numbered) kinds are exempt: their modeled
	// dedup layer discards duplicates before the application sees them.
	DupRate float64
	// SpikeRate delays a message by an extra SpikeLatency.
	SpikeRate    float64
	SpikeLatency time.Duration
	// PartitionSite (0 = the server, 1..N = that client; use
	// PartitionDuration = 0 for "no partition") is cut off the LAN from
	// PartitionAt for PartitionDuration: every message to or from it
	// during the window is lost in transit. Unlike OutageClient the
	// site keeps running and keeps its cache — this is a network
	// partition, not a crash.
	PartitionSite     int
	PartitionAt       time.Duration
	PartitionDuration time.Duration
	// PartitionShard (0 = none; 1..M-1 = that server shard) cuts a
	// server shard off the LAN over the same [PartitionAt,
	// PartitionAt+PartitionDuration) window. Shard 0 is addressed by
	// PartitionSite = 0, matching the single-server grammar.
	PartitionShard int
}

// Enabled reports whether any fault is configured.
func (f FaultSpec) Enabled() bool {
	return f.DropRate > 0 || f.DupRate > 0 || f.SpikeRate > 0 || f.PartitionDuration > 0
}

// DefaultRetryTimeout is the floor of the base request retransmission
// timeout used when faults are enabled and Config.RetryTimeout is zero.
const DefaultRetryTimeout = 250 * time.Millisecond

// EffectiveRetryTimeout returns the retransmission timeout the protocol
// should use: zero (retries off, preserving fault-free behavior bit for
// bit) unless faults are enabled, then RetryTimeout or a default derived
// from the deadline slack. The default must sit well above genuine
// response times — a retry exists to recover a lost message, and firing
// it during an ordinary lock wait duplicates object ships and, under
// load, snowballs into a congestion collapse — so it defaults to a
// quarter of the mean slack (a dropped message still leaves most of the
// slack to finish in), floored at DefaultRetryTimeout for configurations
// with unusually tight slack.
func (c Config) EffectiveRetryTimeout() time.Duration {
	if !c.Faults.Enabled() {
		return 0
	}
	if c.RetryTimeout > 0 {
		return c.RetryTimeout
	}
	if rto := c.MeanSlack / 4; rto > DefaultRetryTimeout {
		return rto
	}
	return DefaultRetryTimeout
}

// Scale shrinks the run length by factor (0 < factor <= 1) for quick
// runs; all other parameters are untouched.
func (c Config) Scale(factor float64) Config {
	if factor <= 0 || factor > 1 {
		return c
	}
	c.Duration = time.Duration(float64(c.Duration) * factor)
	c.Warmup = time.Duration(float64(c.Warmup) * factor)
	if c.Duration < time.Minute {
		c.Duration = time.Minute
	}
	if c.Warmup >= c.Duration {
		c.Warmup = c.Duration / 2
	}
	return c
}
