package config

import (
	"testing"
	"time"
)

func TestDefaultMatchesTable1(t *testing.T) {
	c := Default(20, 0.05)
	if c.DBSize != 10000 {
		t.Errorf("DBSize = %d, want 10000", c.DBSize)
	}
	if c.ServerMemory != 1000 {
		t.Errorf("CS server memory = %d, want 1000", c.ServerMemory)
	}
	if c.ClientMemory != 500 || c.ClientDisk != 500 {
		t.Errorf("client caches = %d/%d, want 500/500", c.ClientMemory, c.ClientDisk)
	}
	if c.MeanInterArrival != 10*time.Second {
		t.Errorf("inter-arrival = %v, want 10s", c.MeanInterArrival)
	}
	if c.MeanLength != 10*time.Second {
		t.Errorf("length = %v, want 10s", c.MeanLength)
	}
	if c.MeanSlack != 20*time.Second {
		t.Errorf("deadline offset = %v, want 20s", c.MeanSlack)
	}
	if c.MeanObjects != 10 {
		t.Errorf("objects/txn = %d, want 10", c.MeanObjects)
	}
	if c.UpdateFraction != 0.05 {
		t.Errorf("updates = %v", c.UpdateFraction)
	}
	if c.DecomposableFraction != 0.10 {
		t.Errorf("decomposable = %v, want 0.10", c.DecomposableFraction)
	}
	if c.LocalFraction != 0.75 {
		t.Errorf("locality = %v, want 0.75", c.LocalFraction)
	}
	if c.NetBandwidthBps != 10e6 {
		t.Errorf("bandwidth = %v, want 10 Mbps", c.NetBandwidthBps)
	}
	if c.ServerThreads != 100 {
		t.Errorf("threads = %d, want 100", c.ServerThreads)
	}
	if !c.UseH1 || !c.UseH2 || !c.UseDecomposition || !c.UseForwardLists || !c.UseDowngrade {
		t.Error("LS features should default on")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultCentralized(t *testing.T) {
	c := DefaultCentralized(20, 0.05)
	if c.ServerMemory != 5000 {
		t.Fatalf("CE server memory = %d, want 5000", c.ServerMemory)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadFields(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.NumClients = 0 },
		func(c *Config) { c.DBSize = -1 },
		func(c *Config) { c.ServerMemory = 0 },
		func(c *Config) { c.ClientMemory = 0 },
		func(c *Config) { c.ClientDisk = -1 },
		func(c *Config) { c.MeanInterArrival = 0 },
		func(c *Config) { c.MeanLength = 0 },
		func(c *Config) { c.MeanSlack = 0 },
		func(c *Config) { c.MeanObjects = 0 },
		func(c *Config) { c.UpdateFraction = 1.5 },
		func(c *Config) { c.DecomposableFraction = -0.1 },
		func(c *Config) { c.HotRegionSize = 0 },
		func(c *Config) { c.HotRegionSize = c.DBSize + 1 },
		func(c *Config) { c.LocalFraction = 2 },
		func(c *Config) { c.ServerThreads = 0 },
		func(c *Config) { c.ClientExecutors = 0 },
		func(c *Config) { c.CollectionWindow = -time.Second },
		func(c *Config) { c.BatchWindow = -time.Millisecond },
		func(c *Config) { c.BatchWindow = 24 * time.Hour }, // absurd: >= MeanSlack
		func(c *Config) { c.BatchWindow = c.MeanSlack },    // window may never eat the whole slack budget
		func(c *Config) { c.MaxSubtasks = 1 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.Drain = -time.Second },
		func(c *Config) { c.Warmup = c.Duration },
	}
	for i, corrupt := range cases {
		c := Default(10, 0.05)
		corrupt(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: corrupted config passed validation", i)
		}
	}
}

func TestValidateBatchWindow(t *testing.T) {
	// Any window strictly inside (0, MeanSlack) is valid, including one
	// just under the slack bound.
	for _, w := range []time.Duration{time.Millisecond, 250 * time.Millisecond} {
		c := Default(10, 0.05)
		c.BatchWindow = w
		if err := c.Validate(); err != nil {
			t.Errorf("window %v rejected: %v", w, err)
		}
	}
	c := Default(10, 0.05)
	c.BatchWindow = c.MeanSlack - time.Nanosecond
	if err := c.Validate(); err != nil {
		t.Errorf("window just under MeanSlack rejected: %v", err)
	}
}

func TestScale(t *testing.T) {
	c := Default(10, 0.05)
	s := c.Scale(0.5)
	if s.Duration != c.Duration/2 {
		t.Fatalf("duration = %v", s.Duration)
	}
	if s.Warmup != c.Warmup/2 {
		t.Fatalf("warmup = %v", s.Warmup)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Out-of-range factors are ignored.
	if got := c.Scale(0); got.Duration != c.Duration {
		t.Fatal("factor 0 should be ignored")
	}
	if got := c.Scale(2); got.Duration != c.Duration {
		t.Fatal("factor 2 should be ignored")
	}
	// Extreme scaling keeps Warmup < Duration.
	tiny := c.Scale(0.001)
	if err := tiny.Validate(); err != nil {
		t.Fatalf("tiny scale invalid: %v", err)
	}
}

func TestEnumStrings(t *testing.T) {
	if PatternLocalizedRW.String() != "localized-rw" ||
		PatternUniform.String() != "uniform" ||
		PatternHotCold.String() != "hot-cold" {
		t.Fatal("pattern names wrong")
	}
	if AccessPattern(9).String() == "" {
		t.Fatal("unknown pattern should still print")
	}
	if TopologySharedBus.String() != "shared-bus" || TopologySwitched.String() != "switched" {
		t.Fatal("topology names wrong")
	}
	if NetTopology(9).String() == "" {
		t.Fatal("unknown topology should still print")
	}
}

func TestValidateNewPolicies(t *testing.T) {
	for _, corrupt := range []func(*Config){
		func(c *Config) { c.Deadlines = DeadlinePolicy(9) },
		func(c *Config) { c.Scheduling = SchedPolicy(9) },
		func(c *Config) { c.Topology = NetTopology(9) },
		func(c *Config) { c.OutageClient = -1 },
		func(c *Config) { c.OutageClient = c.NumClients + 1 },
		func(c *Config) { c.OutageClient = 1 /* no duration */ },
	} {
		c := Default(10, 0.05)
		corrupt(&c)
		if err := c.Validate(); err == nil {
			t.Error("corrupted policy config passed validation")
		}
	}
	// Valid outage config passes.
	c := Default(10, 0.05)
	c.OutageClient = 2
	c.OutageDuration = time.Minute
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}
