package config

import (
	"errors"
	"fmt"
	"time"
)

// This file defines the declarative workload layer the scenario DSL
// (internal/scenario) compiles onto: heterogeneous client classes, each
// with its own timing parameters, a phased arrival process on the
// simulated clock (closed-loop, open-loop Poisson, bursts, diurnal
// curves, flash crowds), and an optional per-class access-skew spec
// with hot-spot drift. Config.Workload is nil for every path that
// existed before the scenario layer, and a nil Workload leaves the
// simulators byte-identical to a build without it.

// ArrivalKind selects the arrival process of one workload phase.
type ArrivalKind int

// Arrival kinds.
const (
	// ArrivalClosed is the paper's closed-loop process: the gap to the
	// next arrival is exponential with mean MeanInterArrival.
	ArrivalClosed ArrivalKind = iota + 1
	// ArrivalOpen is an open-loop Poisson process at Rate arrivals per
	// second per client, independent of completions.
	ArrivalOpen
	// ArrivalBurst emits BurstSize back-to-back arrivals every
	// BurstEvery, optionally spread over BurstSpread.
	ArrivalBurst
	// ArrivalDiurnal is a nonhomogeneous Poisson process whose rate
	// follows a raised-cosine day curve between Rate (trough) and Peak
	// (crest) with period Period.
	ArrivalDiurnal
	// ArrivalFlash is a flash crowd: the rate ramps linearly from Rate
	// to Peak over Ramp at the start of the phase and holds Peak until
	// the phase ends.
	ArrivalFlash
)

// String names the arrival kind (the scenario DSL's phase keywords).
func (k ArrivalKind) String() string {
	switch k {
	case ArrivalClosed:
		return "closed"
	case ArrivalOpen:
		return "open"
	case ArrivalBurst:
		return "burst"
	case ArrivalDiurnal:
		return "diurnal"
	case ArrivalFlash:
		return "flash"
	default:
		return fmt.Sprintf("ArrivalKind(%d)", int(k))
	}
}

// ArrivalPhase is one phase of a class's arrival schedule. Phases run
// back to back from simulated time zero; a zero Duration (legal only on
// the last phase) extends the phase to the generation horizon.
type ArrivalPhase struct {
	Kind     ArrivalKind
	Duration time.Duration

	// MeanInterArrival parameterizes ArrivalClosed.
	MeanInterArrival time.Duration
	// Rate (arrivals/sec/client) parameterizes ArrivalOpen and is the
	// trough (diurnal) or pre-flash base (flash) rate.
	Rate float64
	// Peak is the crest rate of ArrivalDiurnal and ArrivalFlash.
	Peak float64
	// Period is the day length of ArrivalDiurnal.
	Period time.Duration
	// Ramp is the flash crowd's base-to-peak ramp time.
	Ramp time.Duration
	// BurstSize and BurstEvery shape ArrivalBurst; BurstSpread spreads
	// each burst's arrivals uniformly over a window instead of
	// delivering them at one instant.
	BurstSize   int
	BurstEvery  time.Duration
	BurstSpread time.Duration
}

// AccessKind selects a client class's object access generator.
type AccessKind int

// Access kinds.
const (
	// AccessDefault inherits the run-level Config.Pattern generator.
	AccessDefault AccessKind = iota
	// AccessUniform draws objects uniformly over the database.
	AccessUniform
	// AccessLocalized is the paper's Localized-RW pattern.
	AccessLocalized
	// AccessHotCold sends HotFraction of accesses to a shared hot set
	// of HotSize objects.
	AccessHotCold
	// AccessSkewed draws objects Zipf-skewed over the whole database
	// (ZipfTheta), with an optional drifting hot spot: HotFraction of
	// accesses hit a window of HotSize objects whose base advances by
	// DriftStep every DriftEvery of simulated time.
	AccessSkewed
)

// String names the access kind (the scenario DSL's pattern keywords).
func (k AccessKind) String() string {
	switch k {
	case AccessDefault:
		return "default"
	case AccessUniform:
		return "uniform"
	case AccessLocalized:
		return "localized-rw"
	case AccessHotCold:
		return "hot-cold"
	case AccessSkewed:
		return "skewed"
	default:
		return fmt.Sprintf("AccessKind(%d)", int(k))
	}
}

// AccessSpec parameterizes a client class's access generator.
type AccessSpec struct {
	Kind AccessKind
	// ZipfTheta is the skew exponent of AccessSkewed (0 = uniform cold
	// traffic).
	ZipfTheta float64
	// HotSize and HotFraction shape the hot set of AccessHotCold and
	// AccessSkewed.
	HotSize     int
	HotFraction float64
	// DriftEvery and DriftStep rotate the AccessSkewed hot window over
	// simulated time (zero DriftEvery = static hot spot).
	DriftEvery time.Duration
	DriftStep  int
}

// ClientClass is a group of Count identical clients sharing workload
// parameters and an arrival schedule. Classes partition the client
// sites in declaration order: the first class owns sites 1..Count, the
// next the following Count sites, and so on.
type ClientClass struct {
	// Name labels the class in reports and diagnostics.
	Name string
	// Count is the number of client sites in the class.
	Count int

	// MeanLength, MeanSlack and MeanObjects override the run-level
	// workload parameters for this class; zero values inherit the
	// Config field. UpdateFraction and DecomposableFraction are taken
	// literally (zero means read-only / indivisible) — the scenario
	// compiler fills them in explicitly.
	MeanLength           time.Duration
	MeanSlack            time.Duration
	MeanObjects          int
	UpdateFraction       float64
	DecomposableFraction float64

	// Phases is the class's arrival schedule (at least one phase).
	Phases []ArrivalPhase

	// Access overrides the run-level access pattern (nil = inherit).
	Access *AccessSpec
}

// WorkloadSpec describes a heterogeneous scenario workload. When
// Config.Workload is non-nil the per-client generators are built from
// the classes here instead of the flat Table 1 parameters.
type WorkloadSpec struct {
	Classes []ClientClass
}

// TotalClients sums the class counts; it must equal Config.NumClients.
func (w *WorkloadSpec) TotalClients() int {
	n := 0
	for _, c := range w.Classes {
		n += c.Count
	}
	return n
}

// ClassOf maps client site i (1-based) to its class index. It panics if
// i is out of range — Validate guarantees the partition covers exactly
// NumClients sites.
func (w *WorkloadSpec) ClassOf(i int) int {
	rest := i
	for ci, c := range w.Classes {
		rest -= c.Count
		if rest <= 0 {
			return ci
		}
	}
	panic(fmt.Sprintf("config: client %d beyond the workload's %d sites", i, w.TotalClients()))
}

// validateWorkload checks every field the scenario compiler can set:
// class counts, workload parameters, phase shapes, and access-skew
// parameters. It returns an error naming the class (and phase) at
// fault so scenario diagnostics can point at the offending stanza.
func (c Config) validateWorkload() error {
	w := c.Workload
	if len(w.Classes) == 0 {
		return errors.New("config: workload has no client classes")
	}
	if n := w.TotalClients(); n != c.NumClients {
		return fmt.Errorf("config: workload classes cover %d clients, NumClients is %d", n, c.NumClients)
	}
	for ci, cl := range w.Classes {
		name := cl.Name
		if name == "" {
			name = fmt.Sprintf("#%d", ci)
		}
		if cl.Count <= 0 {
			return fmt.Errorf("config: class %s: count must be positive", name)
		}
		if cl.MeanLength < 0 {
			return fmt.Errorf("config: class %s: MeanLength must be non-negative", name)
		}
		if cl.MeanSlack < 0 {
			return fmt.Errorf("config: class %s: MeanSlack must be non-negative", name)
		}
		if cl.MeanObjects < 0 {
			return fmt.Errorf("config: class %s: MeanObjects must be non-negative", name)
		}
		if cl.MeanObjects > c.DBSize {
			return fmt.Errorf("config: class %s: MeanObjects %d exceeds DBSize %d", name, cl.MeanObjects, c.DBSize)
		}
		if cl.UpdateFraction < 0 || cl.UpdateFraction > 1 {
			return fmt.Errorf("config: class %s: UpdateFraction %v out of [0,1]", name, cl.UpdateFraction)
		}
		if cl.DecomposableFraction < 0 || cl.DecomposableFraction > 1 {
			return fmt.Errorf("config: class %s: DecomposableFraction %v out of [0,1]", name, cl.DecomposableFraction)
		}
		if len(cl.Phases) == 0 {
			return fmt.Errorf("config: class %s: needs at least one arrival phase", name)
		}
		for pi, ph := range cl.Phases {
			if err := validatePhase(ph, pi == len(cl.Phases)-1); err != nil {
				return fmt.Errorf("config: class %s: phase %d (%s): %w", name, pi+1, ph.Kind, err)
			}
		}
		if cl.Access != nil {
			if err := c.validateAccess(*cl.Access); err != nil {
				return fmt.Errorf("config: class %s: access: %w", name, err)
			}
		}
	}
	return nil
}

func validatePhase(ph ArrivalPhase, last bool) error {
	if ph.Duration < 0 {
		return errors.New("duration must be non-negative")
	}
	if ph.Duration == 0 && !last {
		return errors.New("only the last phase may leave duration unset")
	}
	switch ph.Kind {
	case ArrivalClosed:
		if ph.MeanInterArrival <= 0 {
			return errors.New("closed-loop phase needs a positive interarrival")
		}
	case ArrivalOpen:
		if ph.Rate <= 0 {
			return errors.New("open-loop phase needs a positive rate")
		}
	case ArrivalBurst:
		if ph.BurstSize <= 0 {
			return errors.New("burst phase needs a positive size")
		}
		if ph.BurstEvery <= 0 {
			return errors.New("burst phase needs a positive every interval")
		}
		if ph.BurstSpread < 0 {
			return errors.New("burst spread must be non-negative")
		}
	case ArrivalDiurnal:
		if ph.Rate <= 0 {
			return errors.New("diurnal phase needs a positive trough rate")
		}
		if ph.Peak < ph.Rate {
			return errors.New("diurnal peak must be at least the trough rate")
		}
		if ph.Period <= 0 {
			return errors.New("diurnal phase needs a positive period")
		}
	case ArrivalFlash:
		if ph.Rate <= 0 {
			return errors.New("flash phase needs a positive base rate")
		}
		if ph.Peak < ph.Rate {
			return errors.New("flash peak must be at least the base rate")
		}
		if ph.Ramp < 0 {
			return errors.New("flash ramp must be non-negative")
		}
	default:
		return fmt.Errorf("unknown arrival kind %d", int(ph.Kind))
	}
	return nil
}

func (c Config) validateAccess(a AccessSpec) error {
	switch a.Kind {
	case AccessDefault, AccessUniform, AccessLocalized:
		// No parameters beyond the run-level ones.
	case AccessHotCold:
		if a.HotSize <= 0 || a.HotSize > c.DBSize {
			return fmt.Errorf("HotSize %d out of (0,%d]", a.HotSize, c.DBSize)
		}
		if a.HotFraction < 0 || a.HotFraction > 1 {
			return fmt.Errorf("HotFraction %v out of [0,1]", a.HotFraction)
		}
	case AccessSkewed:
		if a.ZipfTheta < 0 {
			return fmt.Errorf("ZipfTheta %v must be non-negative", a.ZipfTheta)
		}
		if a.HotFraction < 0 || a.HotFraction > 1 {
			return fmt.Errorf("HotFraction %v out of [0,1]", a.HotFraction)
		}
		if a.HotFraction > 0 && (a.HotSize <= 0 || a.HotSize > c.DBSize) {
			return fmt.Errorf("HotSize %d out of (0,%d]", a.HotSize, c.DBSize)
		}
		if a.DriftEvery < 0 {
			return errors.New("DriftEvery must be non-negative")
		}
		if a.DriftEvery > 0 && a.DriftStep <= 0 {
			return errors.New("DriftStep must be positive when DriftEvery is set")
		}
	default:
		return fmt.Errorf("unknown access kind %d", int(a.Kind))
	}
	return nil
}
