// Package wal models client-based write-ahead logging, the recovery
// scheme of the client-server framework the paper builds on (Panagos et
// al., "Client-Based Logging for High Performance Distributed
// Architectures", reference [16]): each client appends update records to
// its own local log and forces the tail to its disk at commit, so a
// committed transaction's effects survive a crash without a synchronous
// round trip to the server.
//
// The model charges real device time for log forces through the owning
// site's disk resource and implements group commit: forces requested
// while another force is in progress share the next one.
package wal

import (
	"time"

	"siteselect/internal/lockmgr"
	"siteselect/internal/sim"
)

// Record is one logged update.
type Record struct {
	// LSN is the record's log sequence number (1-based, dense).
	LSN int64
	// Txn tags the writing transaction (opaque to the log).
	Txn int64
	// Obj and Version identify the update.
	Obj     lockmgr.ObjectID
	Version int64
}

// Log is a single site's append-only log.
type Log struct {
	env      *sim.Env
	disk     *sim.Resource
	force    time.Duration
	window   time.Duration
	records  []Record
	durable  int64 // highest LSN on disk
	forcing  bool
	forceEnd *sim.Signal

	// Forces counts physical device forces; Appends counts records.
	// GroupCommits counts forces that made more than one transaction
	// durable.
	Forces       int64
	Appends      int64
	GroupCommits int64

	pendingTxns map[int64]bool
}

// New returns a log whose forces serialize on disk and take forceTime
// each.
func New(env *sim.Env, disk *sim.Resource, forceTime time.Duration) *Log {
	return &Log{
		env:         env,
		disk:        disk,
		force:       forceTime,
		forceEnd:    sim.NewSignal(env),
		pendingTxns: make(map[int64]bool),
	}
}

// SetGroupWindow widens group commit: the first committer to reach an
// idle device (the force leader) waits window before computing the
// force target, so every commit landing within the window shares the
// single disk write instead of only those that happened to collide with
// an in-progress force. Zero (the default) preserves the original
// collide-only group commit exactly — the leader never sleeps and no
// event is scheduled. Wired from Config.BatchWindow.
func (l *Log) SetGroupWindow(window time.Duration) { l.window = window }

// Append adds a record to the in-memory log tail and returns its LSN.
func (l *Log) Append(txnID int64, obj lockmgr.ObjectID, version int64) int64 {
	l.Appends++
	lsn := int64(len(l.records)) + 1
	l.records = append(l.records, Record{LSN: lsn, Txn: txnID, Obj: obj, Version: version})
	return lsn
}

// DurableLSN returns the highest LSN known to be on disk.
func (l *Log) DurableLSN() int64 { return l.durable }

// Len returns the number of appended records.
func (l *Log) Len() int { return len(l.records) }

// Records returns the appended records (live slice; callers must not
// mutate).
func (l *Log) Records() []Record { return l.records }

// ForceOp is the state-machine counterpart of ForceTo: a resumable
// force-to-LSN for Machine callers, mirroring the blocking loop —
// piggyback wait, device acquire, force time, group-commit accounting —
// park point for park point.
type ForceOp struct {
	l      *Log
	txnID  int64
	lsn    int64
	target int64
	pc     uint8
}

const (
	fcCheck uint8 = iota
	fcWindow
	fcAcquired
	fcLanded
)

// Init arms the op to make every record up to lsn durable.
func (o *ForceOp) Init(l *Log, txnID, lsn int64) {
	o.l, o.txnID, o.lsn, o.pc = l, txnID, lsn, fcCheck
}

// Step advances the force; false means the task parked and Step must
// run again on the next resume.
func (o *ForceOp) Step(t *sim.Task) bool {
	l := o.l
	for {
		switch o.pc {
		case fcCheck:
			if l.durable >= o.lsn {
				return true
			}
			if l.forcing {
				// Someone is at the device; wait for that force to land
				// and re-check (it may already cover us).
				l.pendingTxns[o.txnID] = true
				t.Wait(l.forceEnd)
				return false
			}
			l.forcing = true
			if l.window > 0 {
				// Group-commit window: hold the leader role (forcing is
				// set, so later committers park on forceEnd) and let
				// appends accumulate before fixing the force target.
				o.pc = fcWindow
				t.Sleep(l.window)
				return false
			}
			o.target = int64(len(l.records)) // everything appended so far
			o.pc = fcAcquired
			if !t.Acquire(l.disk, 0) {
				return false
			}
		case fcWindow:
			o.target = int64(len(l.records)) // everything appended in the window too
			o.pc = fcAcquired
			if !t.Acquire(l.disk, 0) {
				return false
			}
		case fcAcquired:
			o.pc = fcLanded
			t.Sleep(l.force)
			return false
		default: // fcLanded
			l.disk.Release()
			if o.target > l.durable {
				l.durable = o.target
			}
			l.forcing = false
			l.Forces++
			if len(l.pendingTxns) > 0 {
				l.GroupCommits++
				l.pendingTxns = make(map[int64]bool)
			}
			l.forceEnd.Broadcast()
			o.pc = fcCheck
		}
	}
}

// ForceTo blocks until every record up to lsn is durable. Concurrent
// callers piggyback on the in-progress force when it will cover them, or
// join the next one (group commit).
func (l *Log) ForceTo(p *sim.Proc, txnID int64, lsn int64) {
	for l.durable < lsn {
		if l.forcing {
			// Someone is at the device; wait for that force to land and
			// re-check (it may already cover us).
			l.pendingTxns[txnID] = true
			p.Wait(l.forceEnd)
			continue
		}
		l.forcing = true
		if l.window > 0 {
			// Group-commit window (see SetGroupWindow): accumulate
			// appends before fixing the force target.
			p.Sleep(l.window)
		}
		target := int64(len(l.records)) // everything appended so far
		p.Acquire(l.disk, 0)
		p.Sleep(l.force)
		l.disk.Release()
		if target > l.durable {
			l.durable = target
		}
		l.forcing = false
		l.Forces++
		if len(l.pendingTxns) > 0 {
			l.GroupCommits++
			l.pendingTxns = make(map[int64]bool)
		}
		l.forceEnd.Broadcast()
	}
}
