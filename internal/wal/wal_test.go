package wal

import (
	"testing"
	"time"

	"siteselect/internal/sim"
)

func newLog(env *sim.Env) *Log {
	return New(env, sim.NewResource(env, 1), 10*time.Millisecond)
}

func TestAppendAssignsDenseLSNs(t *testing.T) {
	env := sim.NewEnv()
	l := newLog(env)
	for i := int64(1); i <= 5; i++ {
		if lsn := l.Append(i, 1, i); lsn != i {
			t.Fatalf("lsn = %d, want %d", lsn, i)
		}
	}
	if l.Len() != 5 || l.Appends != 5 {
		t.Fatalf("len=%d appends=%d", l.Len(), l.Appends)
	}
	if l.DurableLSN() != 0 {
		t.Fatal("nothing should be durable before a force")
	}
}

func TestForceMakesDurableAndChargesDisk(t *testing.T) {
	env := sim.NewEnv()
	l := newLog(env)
	done := false
	env.Go("committer", func(p *sim.Proc) {
		lsn := l.Append(1, 7, 1)
		l.ForceTo(p, 1, lsn)
		done = true
	})
	env.RunAll()
	if !done || l.DurableLSN() != 1 {
		t.Fatalf("durable = %d", l.DurableLSN())
	}
	if env.Now() != 10*time.Millisecond {
		t.Fatalf("force took %v, want 10ms", env.Now())
	}
	if l.Forces != 1 {
		t.Fatalf("forces = %d", l.Forces)
	}
}

func TestForceAlreadyDurableIsFree(t *testing.T) {
	env := sim.NewEnv()
	l := newLog(env)
	env.Go("c", func(p *sim.Proc) {
		lsn := l.Append(1, 7, 1)
		l.ForceTo(p, 1, lsn)
		before := p.Now()
		l.ForceTo(p, 1, lsn) // no-op
		if p.Now() != before {
			t.Error("redundant force took time")
		}
	})
	env.RunAll()
}

func TestGroupCommit(t *testing.T) {
	env := sim.NewEnv()
	l := newLog(env)
	finished := make([]time.Duration, 3)
	for i := 0; i < 3; i++ {
		i := i
		env.Go("c", func(p *sim.Proc) {
			p.Sleep(time.Duration(i) * time.Millisecond) // stagger within one force
			lsn := l.Append(int64(i+1), 7, int64(i+1))
			l.ForceTo(p, int64(i+1), lsn)
			finished[i] = p.Now()
		})
	}
	env.RunAll()
	// Committer 0 forces alone (covering only itself at t=0); 1 and 2
	// appended during that force and share the second one.
	if l.Forces > 2 {
		t.Fatalf("forces = %d, want group commit to batch (<=2)", l.Forces)
	}
	if l.GroupCommits == 0 {
		t.Fatal("no group commit recorded")
	}
	if l.DurableLSN() != 3 {
		t.Fatalf("durable = %d", l.DurableLSN())
	}
	if finished[1] != finished[2] {
		t.Fatalf("grouped committers finished apart: %v vs %v", finished[1], finished[2])
	}
}

func TestForcesSerializeOnDisk(t *testing.T) {
	env := sim.NewEnv()
	disk := sim.NewResource(env, 1)
	l := New(env, disk, 10*time.Millisecond)
	other := false
	env.Go("io", func(p *sim.Proc) {
		p.Acquire(disk, 0)
		p.Sleep(25 * time.Millisecond) // unrelated disk work first
		disk.Release()
		other = true
	})
	var commitAt time.Duration
	env.Go("c", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		lsn := l.Append(1, 7, 1)
		l.ForceTo(p, 1, lsn)
		commitAt = p.Now()
	})
	env.RunAll()
	if !other {
		t.Fatal("io proc did not finish")
	}
	if commitAt != 35*time.Millisecond {
		t.Fatalf("force finished at %v, want 35ms (behind the other I/O)", commitAt)
	}
}
