package netsim

import (
	"testing"
	"time"

	"siteselect/internal/sim"
)

func TestTransmitTime(t *testing.T) {
	env := sim.NewEnv()
	n := New(env, Config{Latency: time.Millisecond, BandwidthBps: 10e6})
	// 2048 bytes at 10 Mbps = 16384 bits / 10e6 bps = 1.6384 ms.
	got := n.TransmitTime(ObjectBytes)
	want := 1638400 * time.Nanosecond
	if got != want {
		t.Fatalf("TransmitTime = %v, want %v", got, want)
	}
}

func TestDeliveryTimeAndStamp(t *testing.T) {
	env := sim.NewEnv()
	n := New(env, Config{Latency: time.Millisecond, BandwidthBps: 8e6}) // 1 byte = 1 µs
	mb := sim.NewMailbox[Message](env)
	n.Send(Message{Kind: KindObjectShip, From: 0, To: 1, Size: 1000}, mb)
	var got Message
	env.Go("recv", func(p *sim.Proc) { got = mb.Get(p) })
	env.RunAll()
	want := time.Millisecond + 1000*time.Microsecond
	if env.Now() != want {
		t.Fatalf("delivered at %v, want %v", env.Now(), want)
	}
	if got.DeliveredAt != want || got.SentAt != 0 {
		t.Fatalf("stamps = sent %v delivered %v", got.SentAt, got.DeliveredAt)
	}
}

func TestSharedBusSerializes(t *testing.T) {
	env := sim.NewEnv()
	n := New(env, Config{Latency: 0, BandwidthBps: 8e6}) // 1 byte = 1 µs
	mb := sim.NewMailbox[Message](env)
	// Two 1000-byte frames sent at the same instant must arrive 1 ms apart.
	n.Send(Message{Kind: KindObjectShip, Size: 1000}, mb)
	n.Send(Message{Kind: KindObjectShip, Size: 1000}, mb)
	var times []time.Duration
	env.Go("recv", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			m := mb.Get(p)
			times = append(times, m.DeliveredAt)
		}
	})
	env.RunAll()
	if times[0] != time.Millisecond || times[1] != 2*time.Millisecond {
		t.Fatalf("delivery times = %v", times)
	}
}

func TestBusIdleGapDoesNotAccumulate(t *testing.T) {
	env := sim.NewEnv()
	n := New(env, Config{Latency: 0, BandwidthBps: 8e6})
	mb := sim.NewMailbox[Message](env)
	env.Schedule(time.Second, func() {
		n.Send(Message{Kind: KindRecall, Size: 1000}, mb)
	})
	env.Go("recv", func(p *sim.Proc) { mb.Get(p) })
	env.RunAll()
	if env.Now() != time.Second+time.Millisecond {
		t.Fatalf("late send delivered at %v", env.Now())
	}
}

func TestStatsPerKind(t *testing.T) {
	env := sim.NewEnv()
	n := New(env, DefaultConfig())
	mb := sim.NewMailbox[Message](env)
	n.Send(Message{Kind: KindObjectRequest, Size: 128}, mb)
	n.Send(Message{Kind: KindObjectRequest, Size: 128}, mb)
	n.Send(Message{Kind: KindObjectShip, Size: 2048}, mb)
	if s := n.Stats(KindObjectRequest); s.Count != 2 || s.Bytes != 256 {
		t.Fatalf("ObjectRequest stats = %+v", s)
	}
	if s := n.Stats(KindObjectShip); s.Count != 1 || s.Bytes != 2048 {
		t.Fatalf("ObjectShip stats = %+v", s)
	}
	if n.TotalMessages() != 3 {
		t.Fatalf("total = %d", n.TotalMessages())
	}
	if n.TotalBytes() != 2304 {
		t.Fatalf("bytes = %d", n.TotalBytes())
	}
}

func TestDefaultSizeApplied(t *testing.T) {
	env := sim.NewEnv()
	n := New(env, DefaultConfig())
	mb := sim.NewMailbox[Message](env)
	n.Send(Message{Kind: KindLockReply}, mb)
	if s := n.Stats(KindLockReply); s.Bytes != ControlBytes {
		t.Fatalf("default size = %d, want %d", s.Bytes, ControlBytes)
	}
}

func TestKindString(t *testing.T) {
	if KindObjectRequest.String() != "ObjectRequest" {
		t.Fatal("Kind.String broken")
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Fatalf("unknown Kind.String = %q, want Kind(99)", got)
	}
}

func TestUtilization(t *testing.T) {
	env := sim.NewEnv()
	n := New(env, Config{Latency: 0, BandwidthBps: 8e6})
	mb := sim.NewMailbox[Message](env)
	n.Send(Message{Kind: KindObjectShip, Size: 1000}, mb) // 1 ms busy
	env.Go("recv", func(p *sim.Proc) { mb.Get(p) })
	env.RunAll()
	env.Run(10 * time.Millisecond)
	if u := n.Utilization(); u < 0.09 || u > 0.11 {
		t.Fatalf("utilization = %v, want ~0.1", u)
	}
}

func TestSwitchedTopologyNoBusQueueing(t *testing.T) {
	env := sim.NewEnv()
	n := New(env, Config{Latency: time.Millisecond, BandwidthBps: 8e6, Switched: true})
	mb := sim.NewMailbox[Message](env)
	// Two large frames sent together: on a switch both arrive after
	// latency+transmission, with only a nanosecond of ordering skew —
	// no serialization on the medium.
	n.Send(Message{Kind: KindObjectShip, Size: 1000}, mb)
	n.Send(Message{Kind: KindObjectShip, Size: 1000}, mb)
	var times []time.Duration
	env.Go("recv", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			times = append(times, mb.Get(p).DeliveredAt)
		}
	})
	env.RunAll()
	want := 2 * time.Millisecond // 1ms tx + 1ms latency
	if times[0] != want {
		t.Fatalf("first delivery = %v, want %v", times[0], want)
	}
	if times[1] != want+time.Nanosecond {
		t.Fatalf("second delivery = %v, want %v", times[1], want+time.Nanosecond)
	}
}

func TestSwitchedPreservesSendOrder(t *testing.T) {
	env := sim.NewEnv()
	n := New(env, Config{Latency: 0, BandwidthBps: 8e6, Switched: true})
	mb := sim.NewMailbox[Message](env)
	// A big frame sent first must still arrive before a small frame
	// sent immediately after (global send-order clamp).
	n.Send(Message{Kind: KindObjectShip, Size: 4000}, mb)
	n.Send(Message{Kind: KindLockReply, Size: 10}, mb)
	var kinds []Kind
	env.Go("recv", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			kinds = append(kinds, mb.Get(p).Kind)
		}
	})
	env.RunAll()
	if kinds[0] != KindObjectShip || kinds[1] != KindLockReply {
		t.Fatalf("delivery order = %v", kinds)
	}
}
