package netsim

import (
	"testing"
	"time"

	"siteselect/internal/sim"
)

// drain runs the simulation to completion and returns every message
// delivered into mb, in delivery order.
func drain(env *sim.Env, mb *sim.Mailbox[Message]) []Message {
	var got []Message
	env.Go("recv", func(p *sim.Proc) {
		for {
			got = append(got, mb.Get(p))
		}
	})
	env.RunAll()
	return got
}

func TestFaultsZeroConfigIsNoop(t *testing.T) {
	env := sim.NewEnv()
	n := New(env, DefaultConfig())
	n.SetFaults(FaultConfig{Seed: 1}) // all rates zero, no partitions
	if n.FaultsEnabled() {
		t.Fatal("zero-rate fault config should leave faults disabled")
	}
}

func TestFaultsDropUnreliableKind(t *testing.T) {
	env := sim.NewEnv()
	n := New(env, DefaultConfig())
	n.SetFaults(FaultConfig{Seed: 42, DropRate: 1})
	mb := sim.NewMailbox[Message](env)
	n.Send(Message{Kind: KindObjectRequest, From: 1, To: 0}, mb)
	got := drain(env, mb)
	if len(got) != 0 {
		t.Fatalf("DropRate=1 delivered %d unreliable messages, want 0", len(got))
	}
	if n.Faults().Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", n.Faults().Dropped)
	}
	if n.Stats(KindObjectRequest).Count != 1 {
		t.Fatalf("dropped frame not counted as transmitted")
	}
}

func TestFaultsReliableKindRetransmitsUntilHorizon(t *testing.T) {
	env := sim.NewEnv()
	n := New(env, DefaultConfig())
	// Everything is dropped until the horizon; retransmissions sent after
	// it travel clean, so the grant must arrive exactly once.
	n.SetFaults(FaultConfig{
		Seed:              7,
		DropRate:          1,
		Horizon:           200 * time.Millisecond,
		RetransmitTimeout: 10 * time.Millisecond,
	})
	mb := sim.NewMailbox[Message](env)
	n.Send(Message{Kind: KindObjectShip, From: 0, To: 1, Size: ObjectBytes}, mb)
	got := drain(env, mb)
	if len(got) != 1 {
		t.Fatalf("reliable frame delivered %d times, want exactly 1", len(got))
	}
	if got[0].DeliveredAt < 200*time.Millisecond {
		t.Fatalf("delivered at %v, before the fault horizon", got[0].DeliveredAt)
	}
	if n.Faults().Retransmits == 0 {
		t.Fatal("no retransmissions recorded")
	}
}

func TestFaultsPartitionBlocksBothDirections(t *testing.T) {
	for _, dir := range []struct {
		name     string
		from, to SiteID
	}{{"outbound", 2, 0}, {"inbound", 0, 2}} {
		t.Run(dir.name, func(t *testing.T) {
			env := sim.NewEnv()
			n := New(env, DefaultConfig())
			n.SetFaults(FaultConfig{
				Seed:       1,
				Partitions: []Partition{{Site: 2, Start: 0, End: 50 * time.Millisecond}},
			})
			mb := sim.NewMailbox[Message](env)
			n.Send(Message{Kind: KindLoadQuery, From: dir.from, To: dir.to}, mb)
			if got := drain(env, mb); len(got) != 0 {
				t.Fatalf("message crossed an active partition")
			}
			if n.Faults().PartitionDrops != 1 {
				t.Fatalf("PartitionDrops = %d, want 1", n.Faults().PartitionDrops)
			}
		})
	}
}

func TestFaultsPartitionHealsForReliableKind(t *testing.T) {
	env := sim.NewEnv()
	n := New(env, DefaultConfig())
	n.SetFaults(FaultConfig{
		Seed:              1,
		Partitions:        []Partition{{Site: 1, Start: 0, End: 30 * time.Millisecond}},
		RetransmitTimeout: 5 * time.Millisecond,
	})
	mb := sim.NewMailbox[Message](env)
	n.Send(Message{Kind: KindRecall, From: 0, To: 1}, mb)
	got := drain(env, mb)
	if len(got) != 1 {
		t.Fatalf("recall delivered %d times across a healing partition, want 1", len(got))
	}
	if got[0].DeliveredAt < 30*time.Millisecond {
		t.Fatalf("delivered at %v, during the partition", got[0].DeliveredAt)
	}
	// A frame unaffected by the partition passes through untouched.
	n.Send(Message{Kind: KindRecall, From: 0, To: 2}, mb)
}

func TestFaultsDuplicateUnreliableKind(t *testing.T) {
	env := sim.NewEnv()
	n := New(env, DefaultConfig())
	n.SetFaults(FaultConfig{Seed: 3, DupRate: 1})
	mb := sim.NewMailbox[Message](env)
	n.Send(Message{Kind: KindLockReply, From: 0, To: 1}, mb)
	got := drain(env, mb)
	if len(got) != 2 {
		t.Fatalf("DupRate=1 delivered %d copies, want 2", len(got))
	}
	if got[1].DeliveredAt <= got[0].DeliveredAt {
		t.Fatal("duplicate copy must trail the original")
	}
	if n.Faults().Duplicated != 1 {
		t.Fatalf("Duplicated = %d, want 1", n.Faults().Duplicated)
	}
}

func TestFaultsReliableKindNeverDuplicated(t *testing.T) {
	env := sim.NewEnv()
	n := New(env, DefaultConfig())
	n.SetFaults(FaultConfig{Seed: 3, DupRate: 1})
	mb := sim.NewMailbox[Message](env)
	n.Send(Message{Kind: KindObjectReturn, From: 1, To: 0}, mb)
	if got := drain(env, mb); len(got) != 1 {
		t.Fatalf("reliable kind delivered %d times under DupRate=1, want 1", len(got))
	}
}

func TestFaultsSpikeDelaysDelivery(t *testing.T) {
	env := sim.NewEnv()
	cfg := DefaultConfig()
	n := New(env, cfg)
	spike := 25 * time.Millisecond
	n.SetFaults(FaultConfig{Seed: 5, SpikeRate: 1, SpikeLatency: spike})
	mb := sim.NewMailbox[Message](env)
	n.Send(Message{Kind: KindObjectShip, From: 0, To: 1, Size: ObjectBytes}, mb)
	got := drain(env, mb)
	if len(got) != 1 {
		t.Fatalf("spiked frame delivered %d times, want 1", len(got))
	}
	clean := n.TransmitTime(ObjectBytes) + cfg.Latency
	if got[0].DeliveredAt != clean+spike {
		t.Fatalf("spiked delivery at %v, want %v", got[0].DeliveredAt, clean+spike)
	}
	if n.Faults().Spiked != 1 {
		t.Fatalf("Spiked = %d, want 1", n.Faults().Spiked)
	}
}

// TestFaultsDeterministic sends a stream of mixed-kind messages through
// a lossy network twice with the same seed and once with a different
// seed: identical seeds must produce byte-identical delivery schedules,
// and a different seed a different one.
func TestFaultsDeterministic(t *testing.T) {
	run := func(seed int64) ([]Message, FaultStats) {
		env := sim.NewEnv()
		n := New(env, DefaultConfig())
		n.SetFaults(FaultConfig{
			Seed:              seed,
			DropRate:          0.3,
			DupRate:           0.2,
			SpikeRate:         0.2,
			SpikeLatency:      3 * time.Millisecond,
			RetransmitTimeout: 2 * time.Millisecond,
			Partitions:        []Partition{{Site: 2, Start: 10 * time.Millisecond, End: 20 * time.Millisecond}},
		})
		mb := sim.NewMailbox[Message](env)
		kinds := []Kind{KindObjectRequest, KindObjectShip, KindRecall, KindLockReply, KindObjectReturn, KindLoadQuery}
		for i := 0; i < 200; i++ {
			at := time.Duration(i) * 250 * time.Microsecond
			k := kinds[i%len(kinds)]
			from, to := SiteID(1+i%3), ServerSite
			if i%2 == 0 {
				from, to = ServerSite, SiteID(1+i%3)
			}
			env.At(at, func() {
				n.Send(Message{Kind: k, From: from, To: to}, mb)
			})
		}
		return drain(env, mb), n.Faults()
	}
	a, sa := run(99)
	b, sb := run(99)
	if sa != sb {
		t.Fatalf("same seed, different fault counters: %+v vs %+v", sa, sb)
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different delivery counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].SentAt != b[i].SentAt || a[i].DeliveredAt != b[i].DeliveredAt {
			t.Fatalf("same seed, delivery %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c, sc := run(100)
	if sa == sc && len(a) == len(c) {
		same := true
		for i := range a {
			if a[i].DeliveredAt != c[i].DeliveredAt {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced an identical fault schedule")
		}
	}
}
