package netsim

import (
	"testing"
	"time"

	"siteselect/internal/sim"
)

// FuzzFaultSchedule decodes an arbitrary byte string into a fault
// configuration plus a message schedule, runs it to completion twice,
// and checks the fault layer's structural invariants:
//
//   - the simulation always drains — the horizon bounds retransmission,
//     so no fault mix can make RunAll spin forever;
//   - message conservation: deliveries = send attempts (originals plus
//     retransmissions) minus drops of both kinds plus duplicates;
//   - the reliable channel delivers every reliable send exactly once;
//   - the same bytes and seed reproduce the same delivery schedule and
//     the same fault counters, byte for byte.
func FuzzFaultSchedule(f *testing.F) {
	f.Add([]byte{0x64, 0x00, 0x00, 0x05, 0x01, 0x0a, 0x14, 0x02, 0x11, 0x22, 0x33, 0x44}, int64(1))
	f.Add([]byte{0x32, 0x32, 0x32, 0x08, 0x00, 0x00, 0x00, 0x01, 0xff, 0x80, 0x40, 0x20, 0x10}, int64(7))
	f.Add([]byte{0x00, 0x64, 0x64, 0x13, 0x02, 0x05, 0x31, 0x09, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06}, int64(99))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		if len(data) < 9 {
			t.Skip("too short to carry a config and a schedule")
		}
		if len(data) > 300 {
			data = data[:300] // bound the schedule so every input drains fast
		}
		sched := data[8:]
		cfg := FaultConfig{
			Seed:              seed,
			DropRate:          float64(data[0]%101) / 100,
			DupRate:           float64(data[1]%101) / 100,
			SpikeRate:         float64(data[2]%101) / 100,
			SpikeLatency:      time.Duration(data[3]%20+1) * time.Millisecond,
			RetransmitTimeout: time.Duration(data[7]%10+1) * time.Millisecond,
			Horizon:           time.Duration(len(sched)+1) * 500 * time.Microsecond,
		}
		if cut := time.Duration(data[6]%50) * time.Millisecond; cut > 0 {
			start := time.Duration(data[5]%50) * time.Millisecond
			cfg.Partitions = []Partition{{Site: SiteID(data[4] % 4), Start: start, End: start + cut}}
		}
		kinds := []Kind{
			KindObjectRequest, KindObjectShip, KindRecall, KindObjectReturn,
			KindClientForward, KindLockReply, KindTxnShip, KindTxnResult,
			KindLoadQuery, KindLoadReply, KindTxnSubmit, KindUserResult,
		}
		run := func() ([]Message, FaultStats) {
			env := sim.NewEnv()
			n := New(env, DefaultConfig())
			n.SetFaults(cfg)
			mb := sim.NewMailbox[Message](env)
			for i, b := range sched {
				at := time.Duration(i) * 500 * time.Microsecond
				k := kinds[int(b)%len(kinds)]
				from, to := SiteID(b%4), SiteID((b>>2)%4)
				env.At(at, func() { n.Send(Message{Kind: k, From: from, To: to}, mb) })
			}
			var got []Message
			env.Go("recv", func(p *sim.Proc) {
				for {
					got = append(got, mb.Get(p))
				}
			})
			env.RunAll()
			env.Close()
			return got, n.Faults()
		}
		a, sa := run()
		b, sb := run()
		if sa != sb {
			t.Fatalf("same input, different fault counters: %+v vs %+v", sa, sb)
		}
		if len(a) != len(b) {
			t.Fatalf("same input, different delivery counts: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i].Kind != b[i].Kind || a[i].SentAt != b[i].SentAt || a[i].DeliveredAt != b[i].DeliveredAt {
				t.Fatalf("same input, delivery %d differs: %+v vs %+v", i, a[i], b[i])
			}
		}
		attempts := int64(len(sched)) + sa.Retransmits
		want := attempts - sa.Dropped - sa.PartitionDrops + sa.Duplicated
		if int64(len(a)) != want {
			t.Fatalf("conservation broken: %d delivered, want %d (attempts=%d stats=%+v)",
				len(a), want, attempts, sa)
		}
		relSent, relGot := 0, 0
		for _, bb := range sched {
			if kinds[int(bb)%len(kinds)].Reliable() {
				relSent++
			}
		}
		for _, m := range a {
			if m.Kind.Reliable() {
				relGot++
			}
		}
		if relGot != relSent {
			t.Fatalf("reliable channel delivered %d of %d sends (want exactly once each)", relGot, relSent)
		}
	})
}
