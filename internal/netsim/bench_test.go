package netsim

import (
	"testing"

	"siteselect/internal/sim"
)

// TestSendDeliverNoAllocs pins the closure-free delivery path: a
// steady-state Send → delivery event → mailbox drain cycle reuses the
// pending ring, the pooled sim event, and the mailbox ring, allocating
// nothing.
func TestSendDeliverNoAllocs(t *testing.T) {
	env := sim.NewEnv()
	n := New(env, DefaultConfig())
	mb := sim.NewMailbox[Message](env)
	msg := Message{Kind: KindObjectRequest, From: 1, To: 0, Size: 128}
	// Warm the rings and the event pool.
	for i := 0; i < 8; i++ {
		n.Send(msg, mb)
	}
	env.RunAll()
	for {
		if _, ok := mb.TryGet(); !ok {
			break
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		n.Send(msg, mb)
		env.Step()
		mb.TryGet()
	})
	if allocs != 0 {
		t.Fatalf("Send+deliver allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkNetsimSend measures one full message lifetime: Send (bus
// accounting + delivery scheduling), the delivery event, and the
// mailbox drain.
func BenchmarkNetsimSend(b *testing.B) {
	env := sim.NewEnv()
	n := New(env, DefaultConfig())
	mb := sim.NewMailbox[Message](env)
	msg := Message{Kind: KindObjectRequest, From: 1, To: 0, Size: 128}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send(msg, mb)
		env.Step()
		mb.TryGet()
	}
}
