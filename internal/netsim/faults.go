// Fault injection: the network can deterministically drop, duplicate,
// and delay messages and cut sites off the LAN for timed windows. All
// randomness comes from a dedicated seeded stream owned by the network,
// so a (config, seed) pair reproduces the same fault sequence byte for
// byte on every run regardless of experiment worker count. With no
// FaultConfig installed, Send takes exactly the fault-free fast path.
//
// Kinds that carry authoritative state one way — object grants, recalls,
// returns, migration hops, shipped transactions and their results — are
// modeled as travelling on a reliable channel: a lost frame is
// retransmitted with capped exponential backoff until it gets through,
// and the (implied) sequence-number dedup on the receiving side means
// duplicates of these kinds are never delivered. Request–reply kinds
// (requests, control replies, load queries) are left unreliable; the
// protocol recovers via client-side retries and server idempotence.
package netsim

import (
	"time"

	"siteselect/internal/rng"
	"siteselect/internal/sim"
)

// Partition isolates one site from the LAN during [Start, End): every
// message to or from the site in that window is lost in transit. The
// site itself keeps running (this is a network cut, not a crash).
type Partition struct {
	Site  SiteID
	Start time.Duration
	End   time.Duration
}

// FaultConfig parameterizes fault injection. Rates are per-message
// probabilities evaluated at send time.
type FaultConfig struct {
	// Seed seeds the fault lottery stream. It should be derived from
	// the run seed independently of the workload streams (see
	// config.CellSeed) so enabling faults does not perturb the
	// generated transactions.
	Seed int64

	DropRate     float64
	DupRate      float64
	SpikeRate    float64
	SpikeLatency time.Duration

	// Partitions is the explicit fault schedule: timed cuts applied on
	// top of the probabilistic faults.
	Partitions []Partition

	// RetransmitTimeout is the base backoff of the modeled reliable
	// channel (doubled per attempt, capped at 32x). Zero selects 50 ms.
	RetransmitTimeout time.Duration

	// Horizon, when positive, ends all fault activity at that virtual
	// time: later sends (including retransmissions of earlier losses)
	// travel clean. Run harnesses set it to the workload generation
	// horizon so the drain window converges — every surviving message,
	// retried request, and healed partition settles deterministically
	// before the run is audited.
	Horizon time.Duration
}

// FaultStats counts injected faults.
type FaultStats struct {
	// Dropped counts frames lost to the random-drop lottery.
	Dropped int64
	// PartitionDrops counts frames lost crossing a partition cut.
	PartitionDrops int64
	// Duplicated counts extra copies delivered.
	Duplicated int64
	// Spiked counts deliveries delayed by SpikeLatency.
	Spiked int64
	// Retransmits counts reliable-channel retransmissions scheduled
	// after a loss.
	Retransmits int64
}

// faultState is the network's fault-injection machinery, nil when faults
// are off.
type faultState struct {
	cfg   FaultConfig
	rng   *rng.Stream
	stats FaultStats
}

// SetFaults installs fault injection on the network. Call before the
// simulation starts; passing a zero-rate, partition-free config is
// equivalent to never calling it.
func (n *Network) SetFaults(cfg FaultConfig) {
	if cfg.DropRate <= 0 && cfg.DupRate <= 0 && cfg.SpikeRate <= 0 && len(cfg.Partitions) == 0 {
		n.faults = nil
		return
	}
	if cfg.RetransmitTimeout <= 0 {
		cfg.RetransmitTimeout = 50 * time.Millisecond
	}
	n.faults = &faultState{cfg: cfg, rng: rng.NewStream(cfg.Seed)}
}

// FaultsEnabled reports whether fault injection is installed.
func (n *Network) FaultsEnabled() bool { return n.faults != nil }

// Faults returns the accumulated fault counters.
func (n *Network) Faults() FaultStats {
	if n.faults == nil {
		return FaultStats{}
	}
	return n.faults.stats
}

// Reliable reports whether the kind travels on the modeled reliable
// channel under fault injection: one-way messages whose loss the
// protocol could not otherwise recover from (grants carrying forward
// lists, recalls the server's dedup map would never reissue, returns
// and migration hops carrying the only copy of committed data, shipped
// transactions and their results).
func (k Kind) Reliable() bool {
	switch k {
	case KindObjectShip, KindRecall, KindObjectReturn, KindClientForward, KindTxnShip, KindTxnResult:
		return true
	}
	return false
}

// isolated reports whether site is cut off the LAN at time at.
func (f *faultState) isolated(site SiteID, at time.Duration) bool {
	for _, p := range f.cfg.Partitions {
		if p.Site == site && at >= p.Start && at < p.End {
			return true
		}
	}
	return false
}

// deliverFaulty applies the fault lottery to a message whose clean
// delivery time is deliver. It reports true when it took over delivery
// (drop, duplicate, or spike — all scheduled off the FIFO ring, whose
// nondecreasing-delivery invariant holds only for clean traffic) and
// false when the message should take the fault-free ring path.
func (n *Network) deliverFaulty(msg Message, dest *sim.Mailbox[Message], deliver time.Duration) bool {
	f := n.faults
	if f.cfg.Horizon > 0 && msg.SentAt >= f.cfg.Horizon {
		return false // past the fault horizon: clean delivery
	}
	rel := msg.Kind.Reliable()
	if f.isolated(msg.From, msg.SentAt) || f.isolated(msg.To, msg.SentAt) {
		f.stats.PartitionDrops++
		if rel {
			n.scheduleRetransmit(msg, dest)
		}
		return true
	}
	if f.cfg.DropRate > 0 && f.rng.Float64() < f.cfg.DropRate {
		f.stats.Dropped++
		if rel {
			n.scheduleRetransmit(msg, dest)
		}
		return true
	}
	if !rel && f.cfg.DupRate > 0 && f.rng.Float64() < f.cfg.DupRate {
		// The extra copy trails the original by one latency; both
		// deliveries bypass the ring.
		f.stats.Duplicated++
		dup := msg
		dup.DeliveredAt = deliver + n.cfg.Latency + time.Nanosecond
		n.env.At(dup.DeliveredAt, func() { dest.Put(dup) })
		orig := msg
		n.env.At(deliver, func() { dest.Put(orig) })
		if f.cfg.SpikeRate > 0 {
			f.rng.Float64() // keep the per-message draw count stable
		}
		return true
	}
	if f.cfg.SpikeRate > 0 && f.rng.Float64() < f.cfg.SpikeRate {
		f.stats.Spiked++
		late := msg
		late.DeliveredAt = deliver + f.cfg.SpikeLatency
		n.env.At(late.DeliveredAt, func() { dest.Put(late) })
		return true
	}
	return false
}

// scheduleRetransmit re-sends a lost reliable frame after a backoff that
// doubles per attempt (capped at 32x the base). The retransmission goes
// through Send again — it re-occupies the bus, is recounted in the
// traffic stats, and faces the fault lottery anew — so a frame crossing
// a partition keeps retrying until the cut heals.
func (n *Network) scheduleRetransmit(msg Message, dest *sim.Mailbox[Message]) {
	f := n.faults
	shift := msg.rexmit
	if shift > 5 {
		shift = 5
	}
	if msg.rexmit < 250 {
		msg.rexmit++
	}
	f.stats.Retransmits++
	again := msg
	n.env.At(n.env.Now()+f.cfg.RetransmitTimeout<<shift, func() { n.Send(again, dest) })
}
