// Package netsim models the cluster interconnect: a shared-medium LAN
// (the paper uses 10 Mbps Ethernet) carrying typed messages between
// sites. Transmission time is serialized on the shared bus
// (size/bandwidth) and every message additionally pays a propagation and
// protocol-stack latency. Per-kind message and byte counters feed the
// Table 4 reproduction.
package netsim

import (
	"strconv"
	"time"

	"siteselect/internal/sim"
)

// SiteID identifies a site. The server is conventionally site 0 and
// clients are 1..N.
type SiteID int

// ServerSite is the conventional SiteID of the database server.
const ServerSite SiteID = 0

// Kind classifies messages for accounting. The first five kinds are the
// rows of the paper's Table 4.
type Kind int

// Message kinds.
const (
	// KindObjectRequest is a client-to-server object/lock request.
	KindObjectRequest Kind = iota + 1
	// KindObjectShip is a server-to-client object grant carrying data.
	KindObjectShip
	// KindRecall is a server-to-client lock callback.
	KindRecall
	// KindObjectReturn is a client-to-server object return (data or
	// release notice) answering a recall or a voluntary eviction.
	KindObjectReturn
	// KindClientForward is a client-to-client object hop along a
	// forward list.
	KindClientForward
	// KindLockReply is a server-to-client control reply that carries no
	// object data (denials, conflict-location reports).
	KindLockReply
	// KindTxnShip carries a transaction (or subtask) to another site.
	KindTxnShip
	// KindTxnResult returns a shipped transaction's results to its
	// origin.
	KindTxnResult
	// KindLoadQuery asks the server for object locations and client
	// loads.
	KindLoadQuery
	// KindLoadReply answers a load query.
	KindLoadReply
	// KindTxnSubmit carries a whole transaction to the centralized
	// server.
	KindTxnSubmit
	// KindUserResult carries a transaction's results back to the
	// submitting terminal (centralized system).
	KindUserResult

	numKinds
)

var kindNames = map[Kind]string{
	KindObjectRequest: "ObjectRequest",
	KindObjectShip:    "ObjectShip",
	KindRecall:        "Recall",
	KindObjectReturn:  "ObjectReturn",
	KindClientForward: "ClientForward",
	KindLockReply:     "LockReply",
	KindTxnShip:       "TxnShip",
	KindTxnResult:     "TxnResult",
	KindLoadQuery:     "LoadQuery",
	KindLoadReply:     "LoadReply",
	KindTxnSubmit:     "TxnSubmit",
	KindUserResult:    "UserResult",
}

// String returns the kind's name, or "Kind(n)" for unknown values.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "Kind(" + strconv.Itoa(int(k)) + ")"
}

// Typical message sizes in bytes. Objects are the paper's 2 KB pages;
// control messages are small frames.
const (
	ObjectBytes  = 2048
	ControlBytes = 128
	TxnShipBytes = 1024
	ResultBytes  = 512
)

// Message is a frame on the LAN.
type Message struct {
	Kind    Kind
	From    SiteID
	To      SiteID
	Size    int
	Payload any
	// SentAt and DeliveredAt are stamped by the network.
	SentAt      time.Duration
	DeliveredAt time.Duration

	// rexmit counts reliable-channel retransmissions of this frame
	// (fault injection only), driving the backoff schedule.
	rexmit uint8
}

// KindStats aggregates traffic for one message kind.
type KindStats struct {
	Count int64
	Bytes int64
}

// Config sets the physical characteristics of the LAN.
type Config struct {
	// Latency is the fixed per-message cost (propagation plus protocol
	// stack).
	Latency time.Duration
	// BandwidthBps is the shared-medium capacity in bits per second.
	BandwidthBps float64
	// Switched delivers every message at full bandwidth (a non-blocking
	// switch) instead of serializing transmissions on one bus. Message
	// timestamps remain globally ordered by send time either way.
	Switched bool
}

// DefaultConfig matches the paper's testbed: 10 Mbps Ethernet with a
// half-millisecond fixed cost.
func DefaultConfig() Config {
	return Config{Latency: 500 * time.Microsecond, BandwidthBps: 10e6}
}

// pending is an in-flight message waiting for its delivery event.
type pending struct {
	msg  Message
	dest *sim.Mailbox[Message]
}

// Network is the shared LAN.
type Network struct {
	env         *sim.Env
	cfg         Config
	busFreeAt   time.Duration
	lastDeliver time.Duration
	stats       [numKinds]KindStats
	trace       func(Message)
	faults      *faultState

	// pend is a FIFO ring (power-of-two capacity) of in-flight
	// messages. Delivery times are nondecreasing in send order on both
	// topologies, so the network schedules one closure-free sim event
	// per message (RunEvent) and pops the head: a steady-state Send
	// allocates nothing.
	pend     []pending
	pendHead int
	pendN    int
}

// SetTrace installs a callback invoked for every message as it is sent
// (with SentAt/DeliveredAt already stamped). The network is the single
// chokepoint all protocol activity crosses, which makes this the
// cheapest full-system trace. Pass nil to disable.
func (n *Network) SetTrace(fn func(Message)) { n.trace = fn }

// New returns a network on env.
func New(env *sim.Env, cfg Config) *Network {
	if cfg.BandwidthBps <= 0 {
		cfg.BandwidthBps = 10e6
	}
	return &Network{env: env, cfg: cfg}
}

// TransmitTime returns the serialization delay of size bytes on the bus.
func (n *Network) TransmitTime(size int) time.Duration {
	bits := float64(size) * 8
	return time.Duration(bits / n.cfg.BandwidthBps * float64(time.Second))
}

// Send queues msg for delivery into dest. The sender does not block: the
// message occupies the shared bus for its transmission time (waiting
// behind frames already queued) and arrives Latency later. Send stamps
// SentAt/DeliveredAt on the delivered copy and returns the transit time
// (DeliveredAt − SentAt) so senders can attribute network time; under
// fault injection the returned value is the nominal transit of the
// original frame, whatever the fault layer then does with it.
func (n *Network) Send(msg Message, dest *sim.Mailbox[Message]) time.Duration {
	if msg.Size <= 0 {
		msg.Size = ControlBytes
	}
	now := n.env.Now()
	msg.SentAt = now

	var deliver time.Duration
	if n.cfg.Switched {
		// Non-blocking switch: no queueing for the medium, just
		// transmission time and latency. Delivery is clamped to stay
		// in global send order (a nanosecond of skew), which parts of
		// the protocol (grant/recall ordering) rely on.
		deliver = now + n.TransmitTime(msg.Size) + n.cfg.Latency
		if deliver <= n.lastDeliver {
			deliver = n.lastDeliver + time.Nanosecond
		}
	} else {
		start := n.busFreeAt
		if start < now {
			start = now
		}
		done := start + n.TransmitTime(msg.Size)
		n.busFreeAt = done
		deliver = done + n.cfg.Latency
		// The bus serializes transmissions, so deliver is already
		// nondecreasing; the clamp just pins the FIFO invariant the
		// pending ring depends on.
		if deliver < n.lastDeliver {
			deliver = n.lastDeliver
		}
	}
	n.lastDeliver = deliver
	msg.DeliveredAt = deliver

	if int(msg.Kind) > 0 && int(msg.Kind) < int(numKinds) {
		n.stats[msg.Kind].Count++
		n.stats[msg.Kind].Bytes += int64(msg.Size)
	}
	if n.trace != nil {
		n.trace(msg)
	}

	if n.faults != nil && n.deliverFaulty(msg, dest, deliver) {
		return deliver - now
	}
	n.push(pending{msg: msg, dest: dest})
	n.env.AtHook(deliver, n)
	return deliver - now
}

func (n *Network) push(pm pending) {
	if n.pendN == len(n.pend) {
		newCap := len(n.pend) * 2
		if newCap == 0 {
			newCap = 16
		}
		buf := make([]pending, newCap)
		for i := 0; i < n.pendN; i++ {
			buf[i] = n.pend[(n.pendHead+i)&(len(n.pend)-1)]
		}
		n.pend = buf
		n.pendHead = 0
	}
	n.pend[(n.pendHead+n.pendN)&(len(n.pend)-1)] = pm
	n.pendN++
}

// RunEvent delivers the oldest in-flight message. It implements
// sim.EventHook: delivery events are scheduled in send order and fire
// in delivery-time order, which coincide (see Send), so popping the
// ring head always yields the right message.
func (n *Network) RunEvent() {
	i := n.pendHead
	pm := n.pend[i]
	n.pend[i] = pending{}
	n.pendHead = (i + 1) & (len(n.pend) - 1)
	n.pendN--
	pm.dest.Put(pm.msg)
}

// Stats returns the accumulated counters for kind.
func (n *Network) Stats(kind Kind) KindStats {
	if int(kind) <= 0 || int(kind) >= int(numKinds) {
		return KindStats{}
	}
	return n.stats[kind]
}

// TotalMessages returns the count of all messages sent.
func (n *Network) TotalMessages() int64 {
	var t int64
	for _, s := range n.stats {
		t += s.Count
	}
	return t
}

// TotalBytes returns the bytes of all messages sent.
func (n *Network) TotalBytes() int64 {
	var t int64
	for _, s := range n.stats {
		t += s.Bytes
	}
	return t
}

// Utilization returns the fraction of elapsed time the bus has been
// transmitting.
func (n *Network) Utilization() float64 {
	if n.env.Now() <= 0 {
		return 0
	}
	var bits float64
	for _, s := range n.stats {
		bits += float64(s.Bytes) * 8
	}
	busy := bits / n.cfg.BandwidthBps
	return busy / n.env.Now().Seconds()
}
